//! Length-framed streaming over `std::io`.
//!
//! A frame is `[length: u32 le][payload: length bytes]`; the payload
//! is exactly one encoded message. [`FrameReader`] / [`FrameWriter`]
//! turn any `Read`/`Write` pair (a `TcpStream`, a pipe, an in-memory
//! buffer) into a message stream. The length prefix is capped at
//! [`MAX_FRAME`] **before** any allocation, so a hostile peer cannot
//! make the reader balloon; a clean EOF *between* frames is a normal
//! end-of-stream ([`FrameReader::read_request`] returns `Ok(None)`),
//! while EOF *inside* a frame is an error.
//!
//! # Incremental decoding
//!
//! [`FrameAccum`] is the non-blocking entry point: it accumulates one
//! frame across however many `read` calls the transport needs,
//! returning [`FramePoll::Pending`] on `WouldBlock` instead of
//! blocking. An event-driven server parks the connection until the
//! next readiness notification and resumes exactly where the byte
//! stream stopped — mid-header, mid-payload, anywhere. The blocking
//! [`FrameReader`] reads are built on the same accumulator, so both
//! serving styles share one set of framing rules (length cap before
//! allocation, clean-EOF detection, scratch bounded by
//! [`SCRATCH_RETAIN`] across frames *and* error paths).

use std::io::{self, Read, Write};

use crate::codec::DecodeError;
use crate::message::{Request, RequestRef, Response};

/// Largest frame a peer may declare (4 MiB): comfortably above any
/// real message — the largest are registry snapshots — while bounding
/// what a forged length can allocate.
pub const MAX_FRAME: u32 = 4 * 1024 * 1024;

/// Largest capacity the reused frame scratch buffers retain between
/// frames (64 KiB, comfortably above every routine message). One
/// oversized frame — a multi-megabyte snapshot, or a hostile peer
/// deliberately sending `MAX_FRAME` bytes — may grow a buffer to 4
/// MiB for that frame, but the capacity is released afterwards instead
/// of staying pinned for the connection's lifetime. Exported so every
/// layer reusing message buffers (client encode scratch, loopback
/// response scratch) applies the same bound.
pub const SCRATCH_RETAIN: usize = 64 * 1024;

/// Caps a scratch buffer's retained capacity at [`SCRATCH_RETAIN`]
/// (contents past the bound are discarded — call between messages,
/// not while the buffer holds live data).
pub fn bound_scratch(buf: &mut Vec<u8>) {
    if buf.capacity() > SCRATCH_RETAIN {
        buf.truncate(SCRATCH_RETAIN);
        buf.shrink_to(SCRATCH_RETAIN);
    }
}

/// Streaming failure: transport, framing, or message decoding.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes EOF mid-frame).
    Io(io::Error),
    /// The peer declared a frame larger than [`MAX_FRAME`].
    Oversize(u32),
    /// The frame arrived intact but its payload is not a well-formed
    /// message.
    Decode(DecodeError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::Oversize(n) => {
                write!(f, "peer declared a {n}-byte frame (cap {MAX_FRAME})")
            }
            FrameError::Decode(e) => write!(f, "malformed message: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        FrameError::Decode(e)
    }
}

impl FrameError {
    /// `true` when the failure is a malformed frame/message from the
    /// peer (worth answering with a typed wire error) rather than a
    /// dead transport.
    pub fn is_peer_fault(&self) -> bool {
        matches!(self, FrameError::Oversize(_) | FrameError::Decode(_))
    }
}

/// Progress of an incremental frame read (see [`FrameAccum::poll`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramePoll {
    /// The source has no bytes right now (`WouldBlock`); poll again on
    /// the next readiness notification. Never returned by a blocking
    /// source.
    Pending,
    /// A complete frame payload is buffered: read it with
    /// [`FrameAccum::payload`], then release it with
    /// [`FrameAccum::finish_frame`] before polling for the next one.
    Frame,
    /// Clean EOF at a frame boundary — a normal end of stream.
    Eof,
}

/// Incremental single-frame accumulator: the non-blocking decode entry
/// point of the wire layer.
///
/// One `FrameAccum` holds the read-side state machine of one
/// connection: partially received header, partially received payload,
/// or one complete frame awaiting consumption. [`FrameAccum::poll`]
/// advances the machine with however many bytes the source has and
/// never blocks beyond what the source itself does — a non-blocking
/// socket yields [`FramePoll::Pending`] instead of spinning (exactly
/// one `read` returning `WouldBlock` per poll, never a busy loop).
///
/// The payload scratch is reused across frames and re-bounded to
/// [`SCRATCH_RETAIN`] both on [`FrameAccum::finish_frame`] and on
/// every framing error, so neither a multi-megabyte frame nor a
/// hostile error path can pin capacity for a connection's lifetime.
#[derive(Debug, Default)]
pub struct FrameAccum {
    /// Length-prefix bytes received so far (complete at 4).
    header: [u8; 4],
    header_filled: usize,
    /// Payload scratch; sized to the declared length once the header
    /// completes.
    payload: Vec<u8>,
    payload_filled: usize,
    /// A complete frame is buffered and awaits `finish_frame`.
    ready: bool,
}

impl FrameAccum {
    /// A fresh accumulator (no partial frame, empty scratch).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` while a frame has started arriving but is not complete —
    /// the predicate slow-client (slow-loris) eviction timers key on.
    pub fn mid_frame(&self) -> bool {
        !self.ready && (self.header_filled > 0 || self.payload_filled > 0)
    }

    /// `true` when a complete frame is buffered (i.e. [`FrameAccum::poll`]
    /// returned [`FramePoll::Frame`] and [`FrameAccum::finish_frame`]
    /// has not run yet).
    pub fn has_frame(&self) -> bool {
        self.ready
    }

    /// The completed frame's payload. Empty unless [`FrameAccum::has_frame`].
    pub fn payload(&self) -> &[u8] {
        if self.ready {
            &self.payload
        } else {
            &[]
        }
    }

    /// Retained capacity of the payload scratch — observable so tests
    /// (and metrics) can assert the [`SCRATCH_RETAIN`] bound holds.
    pub fn scratch_capacity(&self) -> usize {
        self.payload.capacity()
    }

    /// Consumes the buffered frame (no-op when none) and re-bounds the
    /// scratch, readying the machine for the next frame.
    pub fn finish_frame(&mut self) {
        self.ready = false;
        self.header_filled = 0;
        self.payload.clear();
        self.payload_filled = 0;
        bound_scratch(&mut self.payload);
    }

    /// Resets all partial state after a framing error so a bad frame
    /// cannot pin scratch capacity or leave the machine desynchronized.
    fn abort(&mut self) {
        self.finish_frame();
    }

    /// Advances the frame state machine with whatever bytes `src` can
    /// deliver right now.
    ///
    /// Returns [`FramePoll::Frame`] once a complete frame is buffered
    /// (and again on every later call until [`FrameAccum::finish_frame`]
    /// runs), [`FramePoll::Pending`] when the source reports
    /// `WouldBlock`, and [`FramePoll::Eof`] on clean EOF *between*
    /// frames.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversize`] on a forged length prefix (checked
    /// **before** the payload buffer grows), [`FrameError::Io`] on
    /// transport failure or EOF mid-frame. Every error path resets the
    /// partial state and re-bounds the scratch.
    pub fn poll(&mut self, src: &mut impl Read) -> Result<FramePoll, FrameError> {
        if self.ready {
            return Ok(FramePoll::Frame);
        }
        loop {
            if self.header_filled < 4 {
                match src.read(&mut self.header[self.header_filled..]) {
                    Ok(0) if self.header_filled == 0 => return Ok(FramePoll::Eof),
                    Ok(0) => {
                        let filled = self.header_filled;
                        self.abort();
                        return Err(FrameError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("stream ended {filled} bytes into a frame header"),
                        )));
                    }
                    Ok(n) => {
                        self.header_filled += n;
                        if self.header_filled < 4 {
                            continue;
                        }
                        let len = u32::from_le_bytes(self.header);
                        if len > MAX_FRAME {
                            self.abort();
                            return Err(FrameError::Oversize(len));
                        }
                        self.payload.clear();
                        self.payload.resize(len as usize, 0);
                        self.payload_filled = 0;
                        if len == 0 {
                            self.ready = true;
                            return Ok(FramePoll::Frame);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return Ok(FramePoll::Pending)
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.abort();
                        return Err(FrameError::Io(e));
                    }
                }
            } else {
                match src.read(&mut self.payload[self.payload_filled..]) {
                    Ok(0) => {
                        let (got, want) = (self.payload_filled, self.payload.len());
                        self.abort();
                        return Err(FrameError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("stream ended {got} bytes into a {want}-byte frame payload"),
                        )));
                    }
                    Ok(n) => {
                        self.payload_filled += n;
                        if self.payload_filled == self.payload.len() {
                            self.ready = true;
                            return Ok(FramePoll::Frame);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return Ok(FramePoll::Pending)
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.abort();
                        return Err(FrameError::Io(e));
                    }
                }
            }
        }
    }
}

/// Appends one `[length][payload]` frame to an in-memory buffer
/// without flushing anywhere — the building block for buffered
/// non-blocking writers (the evented server queues responses this way
/// and drains the buffer on write readiness).
///
/// # Errors
///
/// [`FrameError::Oversize`] when the payload exceeds [`MAX_FRAME`]
/// (nothing is appended).
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or(FrameError::Oversize(
            payload.len().min(u32::MAX as usize) as u32
        ))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Reads length-prefixed message frames from any [`Read`].
///
/// The reader owns a [`FrameAccum`] whose payload scratch every
/// `read_request`/`read_response`/`read_request_ref` call reuses, so a
/// steady-state connection reads frames with zero allocations. The
/// blocking reads below drive the same incremental state machine the
/// evented server polls; [`FrameReader::poll_frame`] exposes it
/// directly for callers that own a non-blocking stream.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    accum: FrameAccum,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            accum: FrameAccum::new(),
        }
    }

    /// Non-blocking step: advances the internal [`FrameAccum`] with
    /// whatever bytes the stream has. On [`FramePoll::Frame`], read
    /// the payload with [`FrameReader::frame_payload`] and release it
    /// with [`FrameReader::finish_frame`].
    ///
    /// # Errors
    ///
    /// See [`FrameAccum::poll`].
    pub fn poll_frame(&mut self) -> Result<FramePoll, FrameError> {
        self.accum.poll(&mut self.inner)
    }

    /// The completed frame's payload (empty unless a poll returned
    /// [`FramePoll::Frame`] that has not been finished yet).
    pub fn frame_payload(&self) -> &[u8] {
        self.accum.payload()
    }

    /// Releases the completed frame and re-bounds the scratch.
    pub fn finish_frame(&mut self) {
        self.accum.finish_frame();
    }

    /// `true` while a frame has started arriving but is not complete
    /// (slow-client timers key on this).
    pub fn mid_frame(&self) -> bool {
        self.accum.mid_frame()
    }

    /// Retained payload-scratch capacity (tests assert the
    /// [`SCRATCH_RETAIN`] bound).
    pub fn scratch_capacity(&self) -> usize {
        self.accum.scratch_capacity()
    }

    /// Blocking drive of the accumulator: consumes any frame a prior
    /// read left buffered (lazy finish keeps `read_request_ref`'s
    /// borrow valid until the caller comes back), then reads until a
    /// frame completes or clean EOF. `Ok(true)` = frame buffered.
    fn next_frame_blocking(&mut self) -> Result<bool, FrameError> {
        self.accum.finish_frame();
        match self.accum.poll(&mut self.inner)? {
            FramePoll::Frame => Ok(true),
            FramePoll::Eof => Ok(false),
            // A blocking stream only reports WouldBlock when a read
            // timeout is configured; surface it as the Io error the
            // pre-incremental reader produced.
            FramePoll::Pending => Err(FrameError::Io(io::Error::new(
                io::ErrorKind::WouldBlock,
                "read timed out mid-frame (non-blocking sources should use poll_frame)",
            ))),
        }
    }

    /// Reads one raw frame payload into `buf` (cleared first, capacity
    /// reused); `Ok(false)` on clean EOF between frames.
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] on transport failure or EOF mid-frame,
    /// [`FrameError::Oversize`] on a forged length prefix (checked
    /// **before** the buffer grows).
    pub fn read_frame_into(&mut self, buf: &mut Vec<u8>) -> Result<bool, FrameError> {
        // Release capacity a previous oversized frame may have pinned;
        // the buffer is refilled below regardless.
        bound_scratch(buf);
        if !self.next_frame_blocking()? {
            return Ok(false);
        }
        buf.clear();
        buf.extend_from_slice(self.accum.payload());
        self.accum.finish_frame();
        Ok(true)
    }

    /// Reads one raw frame payload; `Ok(None)` on clean EOF between
    /// frames. Allocating twin of [`FrameReader::read_frame_into`].
    ///
    /// # Errors
    ///
    /// See [`FrameReader::read_frame_into`].
    pub fn read_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let mut payload = Vec::new();
        match self.read_frame_into(&mut payload)? {
            true => Ok(Some(payload)),
            false => Ok(None),
        }
    }

    /// Reads and decodes one [`Request`]; `Ok(None)` on clean EOF. The
    /// frame buffer is reused across calls; the decoded request owns
    /// its bytes.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; malformed payloads are
    /// [`FrameError::Decode`], never a panic.
    pub fn read_request(&mut self) -> Result<Option<Request>, FrameError> {
        if !self.next_frame_blocking()? {
            return Ok(None);
        }
        Ok(Some(Request::decode(self.accum.payload())?))
    }

    /// Reads and decodes one [`RequestRef`] borrowing from the reader's
    /// internal frame buffer; `Ok(None)` on clean EOF. The zero-copy
    /// server path: frame read and decode both reuse buffers, so
    /// serving a request allocates nothing on its way in.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; malformed payloads are
    /// [`FrameError::Decode`], never a panic.
    pub fn read_request_ref(&mut self) -> Result<Option<RequestRef<'_>>, FrameError> {
        if !self.next_frame_blocking()? {
            return Ok(None);
        }
        Ok(Some(RequestRef::decode(self.accum.payload())?))
    }

    /// Reads and decodes one [`Response`]; `Ok(None)` on clean EOF. The
    /// frame buffer is reused across calls; the decoded response owns
    /// its bytes.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; malformed payloads are
    /// [`FrameError::Decode`], never a panic.
    pub fn read_response(&mut self) -> Result<Option<Response>, FrameError> {
        if !self.next_frame_blocking()? {
            return Ok(None);
        }
        Ok(Some(Response::decode(self.accum.payload())?))
    }
}

/// Writes length-prefixed message frames to any [`Write`].
///
/// The writer owns an encode scratch buffer that every
/// `write_request`/`write_response` call reuses, so a steady-state
/// connection writes frames with zero allocations.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
    scratch: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            scratch: Vec::new(),
        }
    }

    /// Writes one raw payload as a frame and flushes.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversize`] when the payload exceeds [`MAX_FRAME`]
    /// (nothing is written), [`FrameError::Io`] on transport failure.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&n| n <= MAX_FRAME)
            .ok_or(FrameError::Oversize(
                payload.len().min(u32::MAX as usize) as u32
            ))?;
        self.inner.write_all(&len.to_le_bytes())?;
        self.inner.write_all(payload)?;
        self.inner.flush()?;
        Ok(())
    }

    /// Encodes and writes one [`Request`], reusing the writer's encode
    /// buffer.
    ///
    /// # Errors
    ///
    /// See [`FrameWriter::write_frame`].
    pub fn write_request(&mut self, request: &Request) -> Result<(), FrameError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        request.encode_into(&mut scratch);
        let result = self.write_frame(&scratch);
        bound_scratch(&mut scratch);
        self.scratch = scratch;
        result
    }

    /// Encodes and writes one [`Response`], reusing the writer's encode
    /// buffer.
    ///
    /// # Errors
    ///
    /// See [`FrameWriter::write_frame`].
    pub fn write_response(&mut self, response: &Response) -> Result<(), FrameError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        response.encode_into(&mut scratch);
        let result = self.write_frame(&scratch);
        bound_scratch(&mut scratch);
        self.scratch = scratch;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ErrorCode, WireVerdict, PROTOCOL_VERSION};

    #[test]
    fn frames_stream_through_a_buffer() {
        let mut wire = Vec::new();
        {
            let mut w = FrameWriter::new(&mut wire);
            w.write_request(&Request::Hello {
                protocol: PROTOCOL_VERSION,
                client: "t".into(),
            })
            .unwrap();
            w.write_request(&Request::Snapshot).unwrap();
        }
        let mut r = FrameReader::new(&wire[..]);
        assert!(matches!(
            r.read_request().unwrap(),
            Some(Request::Hello { .. })
        ));
        assert_eq!(r.read_request().unwrap(), Some(Request::Snapshot));
        assert_eq!(r.read_request().unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn responses_stream_too() {
        let mut wire = Vec::new();
        FrameWriter::new(&mut wire)
            .write_response(&Response::Verdict(WireVerdict::Accept))
            .unwrap();
        let mut r = FrameReader::new(&wire[..]);
        assert_eq!(
            r.read_response().unwrap(),
            Some(Response::Verdict(WireVerdict::Accept))
        );
    }

    #[test]
    fn truncated_frame_is_an_io_error_not_a_hang_or_panic() {
        let mut wire = Vec::new();
        FrameWriter::new(&mut wire)
            .write_response(&Response::Error {
                code: ErrorCode::MalformedRequest,
                detail: "x".into(),
            })
            .unwrap();
        for cut in 1..wire.len() {
            let mut r = FrameReader::new(&wire[..cut]);
            assert!(
                matches!(r.read_response(), Err(FrameError::Io(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversize_header_rejected_before_allocation() {
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut r = FrameReader::new(&huge[..]);
        assert!(matches!(r.read_frame(), Err(FrameError::Oversize(_))));
    }

    #[test]
    fn oversize_payload_refused_on_write() {
        let mut sink = Vec::new();
        let mut w = FrameWriter::new(&mut sink);
        let too_big = vec![0u8; MAX_FRAME as usize + 1];
        assert!(matches!(
            w.write_frame(&too_big),
            Err(FrameError::Oversize(_))
        ));
        assert!(sink.is_empty(), "nothing half-written");
    }

    #[test]
    fn peer_fault_classification() {
        assert!(FrameError::Oversize(9).is_peer_fault());
        assert!(FrameError::Decode(DecodeError::UnknownMessage(0)).is_peer_fault());
        assert!(!FrameError::Io(io::Error::other("x")).is_peer_fault());
    }
}
