//! Property tests for `ropuf-metrics/v1`, `ropuf-trace/v1` and the
//! striped metric primitives.
//!
//! Mirrors the `ropuf-wire/v1` `wire_props` families:
//!
//! 1. **Roundtrip** — `decode(encode(s)) == s` for arbitrary snapshots
//!    (counters, gauges, labeled histograms) and trace dumps, and the
//!    re-encode is byte-identical (the codec is canonical).
//! 2. **Hostility** — byte soup, point mutations and every strict
//!    prefix of a valid blob produce typed errors, never panics, never
//!    over-reads.
//! 3. **Exactness** — striped counters/gauges are exact under
//!    multi-thread hammering; a striped histogram's merge equals a
//!    single-stream histogram bucket for bucket; the trace ring keeps
//!    exactly the newest `capacity` records across wraparound.

use proptest::collection::vec;
use proptest::prelude::*;

use ropuf_numeric::Histogram;
use ropuf_telemetry::{
    Counter, Gauge, HistogramSnapshot, MetricSample, MetricValue, Snapshot, TimerHistogram,
    TraceRecord, TraceRing, TraceSnapshot,
};

/// Deterministically expands compact seeds into a snapshot (the
/// vendored proptest has no composite strategies). Histogram parts are
/// exported from a real recorded histogram, so they always satisfy the
/// reconstruction invariants the decoder re-validates.
fn snapshot_from(seeds: &[u64]) -> Snapshot {
    let mut metrics = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let name = format!("m{i}.{}", seed % 7);
        let labels = match seed % 3 {
            0 => vec![],
            1 => vec![("k".to_string(), format!("v{}", seed % 11))],
            _ => vec![
                ("a".to_string(), String::new()),
                ("b".to_string(), format!("{seed:x}")),
            ],
        };
        let value = match seed % 4 {
            0 => MetricValue::Counter(seed.rotate_left(13)),
            1 => MetricValue::Gauge(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            _ => {
                let mut h = Histogram::new();
                let mut x = seed | 1;
                for _ in 0..(seed % 40) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    h.record(x >> (x % 50));
                }
                MetricValue::Histogram(HistogramSnapshot::from_histogram(&h))
            }
        };
        metrics.push(MetricSample {
            name,
            labels,
            value,
        });
    }
    Snapshot { metrics }
}

fn trace_from(seeds: &[u64], capacity: usize) -> TraceSnapshot {
    let ring = TraceRing::new(capacity);
    for &seed in seeds {
        ring.push(TraceRecord {
            seq: 0,
            msg_type: (seed % 256) as u8,
            device_hash: seed.rotate_left(7),
            decode_ns: seed % 1_000,
            handle_ns: seed % 50_000,
            flush_ns: seed % 300,
            total_ns: seed % 51_300,
            worker: (seed % 8) as u32,
        });
    }
    TraceSnapshot::from_ring(&ring)
}

proptest! {
    #[test]
    fn metrics_snapshot_roundtrips(seeds in vec(any::<u64>(), 0..24)) {
        let snap = snapshot_from(&seeds);
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes);
        prop_assert_eq!(decoded.as_ref(), Ok(&snap));
        // Canonical: the re-encode is byte-identical.
        prop_assert_eq!(decoded.expect("just checked").encode(), bytes);
    }

    #[test]
    fn trace_snapshot_roundtrips(
        seeds in vec(any::<u64>(), 0..80),
        capacity in 1usize..32,
    ) {
        let snap = trace_from(&seeds, capacity);
        prop_assert_eq!(snap.records.len(), seeds.len().min(capacity));
        prop_assert_eq!(snap.recorded, seeds.len() as u64);
        let bytes = snap.encode();
        prop_assert_eq!(TraceSnapshot::decode(&bytes), Ok(snap));
    }

    #[test]
    fn byte_soup_never_panics(bytes in vec(any::<u8>(), 0..400)) {
        // Any outcome but a panic is acceptable; random soup virtually
        // never carries a valid CRC trailer.
        let _ = Snapshot::decode(&bytes);
        let _ = TraceSnapshot::decode(&bytes);
    }

    #[test]
    fn strict_prefixes_always_fail(seeds in vec(any::<u64>(), 1..12)) {
        let bytes = snapshot_from(&seeds).encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "strict prefix of len {} decoded",
                cut
            );
        }
    }

    #[test]
    fn point_mutations_never_panic(
        seeds in vec(any::<u64>(), 0..12),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = snapshot_from(&seeds).encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        // The CRC trailer makes any single-byte mutation a typed error.
        prop_assert!(Snapshot::decode(&bytes).is_err());
    }

    #[test]
    fn striped_counter_is_exact(
        per_thread in vec(1u64..5_000, 1..8),
        bump in 1u64..9,
    ) {
        let counter = Counter::new();
        let gauge = Gauge::new();
        std::thread::scope(|scope| {
            for &n in &per_thread {
                let counter = counter.clone();
                let gauge = gauge.clone();
                scope.spawn(move || {
                    for _ in 0..n {
                        counter.add(bump);
                        gauge.add(bump);
                        gauge.sub(bump - 1);
                    }
                });
            }
        });
        let total: u64 = per_thread.iter().sum();
        prop_assert_eq!(counter.get(), total * bump);
        prop_assert_eq!(gauge.get(), total);
    }

    #[test]
    fn striped_histogram_merge_equals_single_stream(
        samples in vec(any::<u64>(), 0..400),
        threads in 1usize..6,
    ) {
        let striped = TimerHistogram::new();
        std::thread::scope(|scope| {
            for chunk in samples.chunks(samples.len().max(1).div_ceil(threads)) {
                let striped = striped.clone();
                scope.spawn(move || {
                    for &v in chunk {
                        striped.record(v);
                    }
                });
            }
        });
        let mut reference = Histogram::new();
        for &v in &samples {
            reference.record(v);
        }
        // Bucket-exact equality: sparse exports match, hence every
        // quantile matches too.
        let merged = striped.merged();
        prop_assert_eq!(merged.count(), reference.count());
        prop_assert_eq!(merged.sum(), reference.sum());
        prop_assert_eq!(merged.sparse_counts(), reference.sparse_counts());
        if reference.count() > 0 {
            prop_assert_eq!(merged.min(), reference.min());
            prop_assert_eq!(merged.max(), reference.max());
            for q in [50.0, 90.0, 99.0, 99.9] {
                prop_assert_eq!(merged.percentile(q), reference.percentile(q));
            }
        }
    }

    #[test]
    fn trace_ring_keeps_the_newest_across_wraparound(
        pushes in 0u64..300,
        capacity in 1usize..24,
    ) {
        let seeds: Vec<u64> = (0..pushes).collect();
        let snap = trace_from(&seeds, capacity);
        prop_assert_eq!(snap.recorded, pushes);
        // Single-threaded pushes never drop.
        prop_assert_eq!(snap.dropped, 0);
        let kept = pushes.min(capacity as u64);
        prop_assert_eq!(snap.records.len() as u64, kept);
        let expected: Vec<u64> = (pushes - kept..pushes).collect();
        let seqs: Vec<u64> = snap.records.iter().map(|r| r.seq).collect();
        // Exactly the newest records survive, oldest first.
        prop_assert_eq!(seqs, expected);
    }
}
