//! Property tests for `ropuf-metrics/v1`, `ropuf-trace/v1`,
//! `ropuf-timeseries/v1` and the striped metric primitives.
//!
//! Mirrors the `ropuf-wire/v1` `wire_props` families:
//!
//! 1. **Roundtrip** — `decode(encode(s)) == s` for arbitrary snapshots
//!    (counters, gauges, labeled histograms), trace dumps and time
//!    series, and the re-encode is byte-identical (the codec is
//!    canonical).
//! 2. **Hostility** — byte soup, point mutations and every strict
//!    prefix of a valid blob produce typed errors, never panics, never
//!    over-reads.
//! 3. **Exactness** — striped counters/gauges are exact under
//!    multi-thread hammering; a striped histogram's merge equals a
//!    single-stream histogram bucket for bucket; the trace ring keeps
//!    exactly the newest `capacity` records across wraparound; a chain
//!    of sampler delta points telescopes to the final registry totals
//!    exactly.

use proptest::collection::vec;
use proptest::prelude::*;

use ropuf_numeric::Histogram;
use ropuf_telemetry::{
    Counter, Gauge, HistogramSnapshot, MetricSample, MetricValue, Registry, SeriesPoint,
    SeriesRing, Snapshot, TimeSeriesSnapshot, TimerHistogram, TraceRecord, TraceRing,
    TraceSnapshot, LATENCY_BANDS, SERIES_PHASES,
};

/// Deterministically expands compact seeds into a snapshot (the
/// vendored proptest has no composite strategies). Histogram parts are
/// exported from a real recorded histogram, so they always satisfy the
/// reconstruction invariants the decoder re-validates.
fn snapshot_from(seeds: &[u64]) -> Snapshot {
    let mut metrics = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let name = format!("m{i}.{}", seed % 7);
        let labels = match seed % 3 {
            0 => vec![],
            1 => vec![("k".to_string(), format!("v{}", seed % 11))],
            _ => vec![
                ("a".to_string(), String::new()),
                ("b".to_string(), format!("{seed:x}")),
            ],
        };
        let value = match seed % 4 {
            0 => MetricValue::Counter(seed.rotate_left(13)),
            1 => MetricValue::Gauge(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            _ => {
                let mut h = Histogram::new();
                let mut x = seed | 1;
                for _ in 0..(seed % 40) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    h.record(x >> (x % 50));
                }
                MetricValue::Histogram(HistogramSnapshot::from_histogram(&h))
            }
        };
        metrics.push(MetricSample {
            name,
            labels,
            value,
        });
    }
    Snapshot { metrics }
}

fn trace_from(seeds: &[u64], capacity: usize) -> TraceSnapshot {
    let ring = TraceRing::new(capacity);
    for &seed in seeds {
        ring.push(TraceRecord {
            seq: 0,
            msg_type: (seed % 256) as u8,
            device_hash: seed.rotate_left(7),
            ready_ns: seed % 2_000,
            decode_ns: seed % 1_000,
            handle_ns: seed % 50_000,
            flush_ns: seed % 300,
            flush_wait_ns: seed % 9_000,
            total_ns: seed % 62_300,
            worker: (seed % 8) as u32,
        });
    }
    TraceSnapshot::from_ring(&ring)
}

/// Deterministically expands compact seeds into a time-series snapshot
/// with every field populated (the decoder must reproduce each one).
fn series_from(seeds: &[u64], capacity: usize) -> TimeSeriesSnapshot {
    let ring = SeriesRing::new(capacity, std::time::Duration::from_millis(250));
    for (i, &seed) in seeds.iter().enumerate() {
        let mut point = SeriesPoint {
            at_ns: (i as u64 + 1) * 250_000_000,
            interval_ns: 250_000_000 + seed % 1_000_000,
            requests: seed % 10_000,
            accepted: seed % 512,
            evicted: seed % 7,
            open: seed % 4_096,
            busy_ns: seed.rotate_left(9),
            wall_ns: seed.rotate_left(9).wrapping_add(seed % 1_000),
            ..SeriesPoint::default()
        };
        for (slot, _) in SERIES_PHASES.iter().enumerate() {
            point.phase_total_ns[slot] = seed.rotate_left(slot as u32) % 1_000_000;
            point.phase_count[slot] = seed % (1_000 + slot as u64);
        }
        for band in 0..LATENCY_BANDS {
            point.latency[band] = seed.rotate_right(band as u32) % 500;
        }
        ring.push(point);
    }
    TimeSeriesSnapshot::from_ring(&ring)
}

proptest! {
    #[test]
    fn metrics_snapshot_roundtrips(seeds in vec(any::<u64>(), 0..24)) {
        let snap = snapshot_from(&seeds);
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes);
        prop_assert_eq!(decoded.as_ref(), Ok(&snap));
        // Canonical: the re-encode is byte-identical.
        prop_assert_eq!(decoded.expect("just checked").encode(), bytes);
    }

    #[test]
    fn trace_snapshot_roundtrips(
        seeds in vec(any::<u64>(), 0..80),
        capacity in 1usize..32,
    ) {
        let snap = trace_from(&seeds, capacity);
        prop_assert_eq!(snap.records.len(), seeds.len().min(capacity));
        prop_assert_eq!(snap.recorded, seeds.len() as u64);
        let bytes = snap.encode();
        prop_assert_eq!(TraceSnapshot::decode(&bytes), Ok(snap));
    }

    #[test]
    fn timeseries_snapshot_roundtrips(
        seeds in vec(any::<u64>(), 0..40),
        capacity in 1usize..16,
    ) {
        let snap = series_from(&seeds, capacity);
        prop_assert_eq!(snap.points.len(), seeds.len().min(capacity));
        prop_assert_eq!(snap.sampled, seeds.len() as u64);
        let bytes = snap.encode();
        let decoded = TimeSeriesSnapshot::decode(&bytes);
        prop_assert_eq!(decoded.as_ref(), Ok(&snap));
        // Canonical: the re-encode is byte-identical.
        prop_assert_eq!(decoded.expect("just checked").encode(), bytes);
    }

    #[test]
    fn timeseries_strict_prefixes_always_fail(seeds in vec(any::<u64>(), 1..6)) {
        let bytes = series_from(&seeds, 8).encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                TimeSeriesSnapshot::decode(&bytes[..cut]).is_err(),
                "strict prefix of len {} decoded",
                cut
            );
        }
    }

    #[test]
    fn timeseries_point_mutations_never_panic(
        seeds in vec(any::<u64>(), 0..6),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = series_from(&seeds, 8).encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        // The CRC trailer makes any single-byte mutation a typed error.
        prop_assert!(TimeSeriesSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn byte_soup_never_panics(bytes in vec(any::<u8>(), 0..400)) {
        // Any outcome but a panic is acceptable; random soup virtually
        // never carries a valid CRC trailer.
        let _ = Snapshot::decode(&bytes);
        let _ = TraceSnapshot::decode(&bytes);
        let _ = TimeSeriesSnapshot::decode(&bytes);
    }

    #[test]
    fn series_deltas_telescope_to_registry_totals(
        rounds in vec(1u64..400, 1..10),
    ) {
        // The sampler's exactness contract: cut points after arbitrary
        // bursts of activity and the per-field sums over all points
        // equal the registry's final totals — nothing double-counted,
        // nothing lost, regardless of where the cuts land.
        let registry = Registry::new();
        let requests = registry.counter("server.requests", &[("backend", "prop")]);
        let open = registry.gauge("server.connections.open", &[("backend", "prop")]);
        let handle = registry.histogram(
            "server.request.phase_ns",
            &[("backend", "prop"), ("msg", "auth"), ("phase", "handle")],
        );
        let total = registry.histogram("server.request.total_ns", &[("backend", "prop")]);
        let mut prev = Snapshot { metrics: Vec::new() };
        let mut points = Vec::new();
        for (i, &n) in rounds.iter().enumerate() {
            for j in 0..n {
                requests.add(1);
                open.add(1);
                handle.record(j.wrapping_mul(737) % 5_000_000);
                total.record(j.wrapping_mul(12_289) % 40_000_000);
            }
            let next = registry.snapshot();
            points.push(SeriesPoint::between(
                &prev,
                &next,
                (i as u64 + 1) * 1_000_000,
                1_000_000,
            ));
            prev = next;
        }
        let expected: u64 = rounds.iter().sum();
        prop_assert_eq!(points.iter().map(|p| p.requests).sum::<u64>(), expected);
        let handle_slot = SERIES_PHASES
            .iter()
            .position(|p| *p == "handle")
            .expect("handle is a phase");
        prop_assert_eq!(
            points.iter().map(|p| p.phase_count[handle_slot]).sum::<u64>(),
            expected
        );
        let merged_handle = handle.merged();
        prop_assert_eq!(
            points.iter().map(|p| p.phase_total_ns[handle_slot]).sum::<u64>(),
            u64::try_from(merged_handle.sum()).unwrap_or(u64::MAX)
        );
        // Every heatmap cell across all rows sums to the total
        // histogram's sample count.
        prop_assert_eq!(
            points.iter().flat_map(|p| p.latency.iter()).sum::<u64>(),
            expected
        );
        // Gauges are point-in-time, not deltas: the last cut sees the
        // final value.
        prop_assert_eq!(points.last().expect("nonempty").open, open.get());
    }

    #[test]
    fn strict_prefixes_always_fail(seeds in vec(any::<u64>(), 1..12)) {
        let bytes = snapshot_from(&seeds).encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "strict prefix of len {} decoded",
                cut
            );
        }
    }

    #[test]
    fn point_mutations_never_panic(
        seeds in vec(any::<u64>(), 0..12),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = snapshot_from(&seeds).encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        // The CRC trailer makes any single-byte mutation a typed error.
        prop_assert!(Snapshot::decode(&bytes).is_err());
    }

    #[test]
    fn striped_counter_is_exact(
        per_thread in vec(1u64..5_000, 1..8),
        bump in 1u64..9,
    ) {
        let counter = Counter::new();
        let gauge = Gauge::new();
        std::thread::scope(|scope| {
            for &n in &per_thread {
                let counter = counter.clone();
                let gauge = gauge.clone();
                scope.spawn(move || {
                    for _ in 0..n {
                        counter.add(bump);
                        gauge.add(bump);
                        gauge.sub(bump - 1);
                    }
                });
            }
        });
        let total: u64 = per_thread.iter().sum();
        prop_assert_eq!(counter.get(), total * bump);
        prop_assert_eq!(gauge.get(), total);
    }

    #[test]
    fn striped_histogram_merge_equals_single_stream(
        samples in vec(any::<u64>(), 0..400),
        threads in 1usize..6,
    ) {
        let striped = TimerHistogram::new();
        std::thread::scope(|scope| {
            for chunk in samples.chunks(samples.len().max(1).div_ceil(threads)) {
                let striped = striped.clone();
                scope.spawn(move || {
                    for &v in chunk {
                        striped.record(v);
                    }
                });
            }
        });
        let mut reference = Histogram::new();
        for &v in &samples {
            reference.record(v);
        }
        // Bucket-exact equality: sparse exports match, hence every
        // quantile matches too.
        let merged = striped.merged();
        prop_assert_eq!(merged.count(), reference.count());
        prop_assert_eq!(merged.sum(), reference.sum());
        prop_assert_eq!(merged.sparse_counts(), reference.sparse_counts());
        if reference.count() > 0 {
            prop_assert_eq!(merged.min(), reference.min());
            prop_assert_eq!(merged.max(), reference.max());
            for q in [50.0, 90.0, 99.0, 99.9] {
                prop_assert_eq!(merged.percentile(q), reference.percentile(q));
            }
        }
    }

    #[test]
    fn trace_ring_keeps_the_newest_across_wraparound(
        pushes in 0u64..300,
        capacity in 1usize..24,
    ) {
        let seeds: Vec<u64> = (0..pushes).collect();
        let snap = trace_from(&seeds, capacity);
        prop_assert_eq!(snap.recorded, pushes);
        // Single-threaded pushes never drop.
        prop_assert_eq!(snap.dropped, 0);
        let kept = pushes.min(capacity as u64);
        prop_assert_eq!(snap.records.len() as u64, kept);
        let expected: Vec<u64> = (pushes - kept..pushes).collect();
        let seqs: Vec<u64> = snap.records.iter().map(|r| r.seq).collect();
        // Exactly the newest records survive, oldest first.
        prop_assert_eq!(seqs, expected);
    }
}
