//! The metric registry and its point-in-time [`Snapshot`].
//!
//! A [`Registry`] is an instantiable (not process-global) namespace of
//! named, labeled metrics. Each server backend and each verifier owns
//! its own registry, so tests running many stacks in one process never
//! see each other's numbers; a registry clone is a cheap handle onto
//! the same metrics. Registration (`counter`/`gauge`/`histogram`) takes
//! a lock and is meant for setup paths; the returned handles are then
//! incremented lock-free on the hot path.
//!
//! [`Registry::snapshot`] freezes every metric into a [`Snapshot`] —
//! sorted, self-contained, mergeable — which is what travels the wire
//! as a `ropuf-metrics/v1` blob (see [`crate::codec`]) and renders as
//! human text.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use ropuf_numeric::{Histogram, SparseHistogramError};

use crate::metrics::{Counter, Gauge, TimerHistogram};

/// Longest metric name the codec accepts.
pub const MAX_NAME: usize = 256;
/// Most labels per metric.
pub const MAX_LABELS: usize = 8;
/// Longest label key.
pub const MAX_LABEL_KEY: usize = 64;
/// Longest label value.
pub const MAX_LABEL_VALUE: usize = 256;
/// Most metrics per snapshot.
pub const MAX_METRICS: usize = 4096;

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(TimerHistogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// An instantiable metric namespace. Clones share the same metrics.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().expect("registry lock");
        f.debug_struct("Registry")
            .field("metrics", &entries.len())
            .finish()
    }
}

fn canonical_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

fn check_identity(name: &str, labels: &[(String, String)]) {
    assert!(
        !name.is_empty() && name.len() <= MAX_NAME,
        "metric name must be 1..={MAX_NAME} bytes"
    );
    assert!(labels.len() <= MAX_LABELS, "at most {MAX_LABELS} labels");
    for (k, v) in labels {
        assert!(
            !k.is_empty() && k.len() <= MAX_LABEL_KEY && v.len() <= MAX_LABEL_VALUE,
            "label {k}={v} exceeds the codec caps"
        );
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        wrap: impl FnOnce(T) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<T>,
        fresh: impl FnOnce() -> T,
    ) -> T {
        let labels = canonical_labels(labels);
        check_identity(name, &labels);
        let mut entries = self.entries.lock().expect("registry lock");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return unwrap(&entry.metric).unwrap_or_else(|| {
                panic!(
                    "metric {name} already registered as a {}",
                    entry.metric.kind()
                )
            });
        }
        assert!(entries.len() < MAX_METRICS, "registry full ({MAX_METRICS})");
        let handle = fresh();
        entries.push(Entry {
            name: name.to_string(),
            labels,
            metric: wrap(handle.clone()),
        });
        handle
    }

    /// The counter `name{labels}`, creating it on first use. Repeated
    /// registration with the same identity returns a handle onto the
    /// same counter; re-registering the identity as a different metric
    /// kind panics (a programming error, caught at setup time).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.register(
            name,
            labels,
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Counter::new,
        )
    }

    /// The gauge `name{labels}`, creating it on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.register(
            name,
            labels,
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Gauge::new,
        )
    }

    /// The latency histogram `name{labels}`, creating it on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> TimerHistogram {
        self.register(
            name,
            labels,
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            TimerHistogram::new,
        )
    }

    /// Freezes every metric into a sorted, self-contained [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("registry lock");
        let mut metrics: Vec<MetricSample> = entries
            .iter()
            .map(|e| MetricSample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        MetricValue::Histogram(HistogramSnapshot::from_histogram(&h.merged()))
                    }
                },
            })
            .collect();
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { metrics }
    }
}

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic event count.
    Counter(u64),
    /// A two-way gauge.
    Gauge(u64),
    /// A latency distribution.
    Histogram(HistogramSnapshot),
}

/// The exported parts of a [`Histogram`]: scalars plus the sparse
/// non-zero buckets. [`HistogramSnapshot::to_histogram`] rebuilds the
/// exact histogram (validated), so a decoded snapshot computes the same
/// quantiles the server would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Exact sample sum.
    pub sum: u128,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(bucket index, count)` pairs, strictly ascending, no zeros.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Exports a histogram's mergeable parts.
    pub fn from_histogram(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h.sparse_counts(),
        }
    }

    /// Rebuilds the exact [`Histogram`], validating every invariant.
    pub fn to_histogram(&self) -> Result<Histogram, SparseHistogramError> {
        Histogram::from_sparse(self.count, self.sum, self.min, self.max, &self.buckets)
    }
}

/// One named, labeled metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Dotted metric name, e.g. `server.requests`.
    pub name: String,
    /// Sorted `(key, value)` labels.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", inner.join(","))
}

/// A frozen, sorted, self-contained set of metric values — what a
/// `MetricsSnapshot` wire request returns and what `loadgen` correlates
/// against client-side measurements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Samples sorted by `(name, labels)`.
    pub metrics: Vec<MetricSample>,
}

impl Snapshot {
    /// The value of `name{labels}` (labels in any order), if present.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let labels = canonical_labels(labels);
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
            .map(|m| &m.value)
    }

    /// Sum of every counter named `name`, across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match m.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// Total samples across every histogram named `name`.
    pub fn histogram_samples(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match &m.value {
                MetricValue::Histogram(h) => Some(h.count),
                _ => None,
            })
            .sum()
    }

    /// Folds `other` into `self` by metric identity: counters and
    /// gauges add, histograms merge, unknown identities append. Two
    /// layers exporting disjoint namespaces (`server.*`, `verifier.*`)
    /// concatenate losslessly; overlapping identities combine exactly.
    pub fn merge(&mut self, other: Snapshot) {
        for sample in other.metrics {
            match self
                .metrics
                .iter_mut()
                .find(|m| m.name == sample.name && m.labels == sample.labels)
            {
                None => self.metrics.push(sample),
                Some(mine) => match (&mut mine.value, sample.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                        *a = a.wrapping_add(b);
                    }
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                        *a = a.wrapping_add(b);
                    }
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        let merged = match (a.to_histogram(), b.to_histogram()) {
                            (Ok(mut ha), Ok(hb)) => {
                                ha.merge(&hb);
                                HistogramSnapshot::from_histogram(&ha)
                            }
                            // Unvalidatable parts (never produced by our
                            // own registries): keep ours.
                            _ => a.clone(),
                        };
                        *a = merged;
                    }
                    // Kind clash between layers: keep ours.
                    (_, _) => {}
                },
            }
        }
        self.metrics
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// Human rendering: one line per metric, histograms as their
    /// summary percentiles (µs).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let labels = render_labels(&m.labels);
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "counter   {}{} = {}", m.name, labels, v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "gauge     {}{} = {}", m.name, labels, v);
                }
                MetricValue::Histogram(h) => match h.to_histogram() {
                    // Raw bucket values: histograms are unit-agnostic
                    // here (the metric name carries the unit suffix).
                    Ok(hist) => {
                        let s = hist.summary();
                        let _ = writeln!(
                            out,
                            "histogram {}{} n={} p50={} p90={} p99={} p999={} max={}",
                            m.name, labels, s.count, s.p50, s.p90, s.p99, s.p999, s.max
                        );
                    }
                    Err(_) => {
                        let _ = writeln!(out, "histogram {}{} <invalid parts>", m.name, labels);
                    }
                },
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_snapshot_sorted() {
        let registry = Registry::new();
        let a = registry.counter("b.requests", &[("backend", "evented")]);
        let b = registry.counter("b.requests", &[("backend", "evented")]);
        a.inc();
        b.inc();
        registry.counter("a.zzz", &[]).add(5);
        registry.gauge("b.open", &[]).add(2);
        registry
            .histogram("c.latency", &[("phase", "handle")])
            .record(1000);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a.zzz", "b.open", "b.requests", "c.latency"]);
        assert_eq!(
            snap.find("b.requests", &[("backend", "evented")]),
            Some(&MetricValue::Counter(2)),
            "both handles hit the same counter"
        );
        assert_eq!(snap.counter_total("a.zzz"), 5);
        assert_eq!(snap.histogram_samples("c.latency"), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics_at_registration() {
        let registry = Registry::new();
        registry.counter("x", &[]);
        registry.gauge("x", &[]);
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = Registry::new();
        let a = registry.counter("m", &[("a", "1"), ("b", "2")]);
        let b = registry.counter("m", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(registry.snapshot().metrics.len(), 1);
    }

    #[test]
    fn merge_adds_and_appends() {
        let r1 = Registry::new();
        r1.counter("shared", &[]).add(3);
        r1.histogram("lat", &[]).record(100);
        let r2 = Registry::new();
        r2.counter("shared", &[]).add(4);
        r2.counter("only2", &[]).inc();
        r2.histogram("lat", &[]).record(200);
        let mut merged = r1.snapshot();
        merged.merge(r2.snapshot());
        assert_eq!(merged.counter_total("shared"), 7);
        assert_eq!(merged.counter_total("only2"), 1);
        assert_eq!(merged.histogram_samples("lat"), 2);
    }

    #[test]
    fn render_text_mentions_every_metric() {
        let registry = Registry::new();
        registry.counter("served", &[("x", "y")]).add(9);
        registry.histogram("lat", &[]).record(2_000);
        let text = registry.snapshot().render_text();
        assert!(text.contains("served{x=y} = 9"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    /// Golden rendering over a fixed registry: the exact text is part
    /// of the operator-facing contract (`ropuf-ops` and the loadgen
    /// `--telemetry` report both print it), so format drift must be a
    /// conscious change here, not an accident.
    #[test]
    fn render_text_golden() {
        let registry = Registry::new();
        registry
            .counter("server.requests", &[("backend", "evented")])
            .add(42);
        registry
            .gauge("server.connections.open", &[("backend", "evented")])
            .add(3);
        let h = registry.histogram("server.request.total_ns", &[("backend", "evented")]);
        for _ in 0..10 {
            h.record(1_000);
        }
        h.record(64_000);
        registry.counter("unlabeled.total", &[]).add(7);
        registry.histogram("empty.hist_ns", &[]);
        let text = registry.snapshot().render_text();
        let expected = "\
histogram empty.hist_ns n=0 p50=0 p90=0 p99=0 p999=0 max=0
gauge     server.connections.open{backend=evented} = 3
histogram server.request.total_ns{backend=evented} n=11 p50=1000 p90=1000 p99=63488 p999=63488 max=64000
counter   server.requests{backend=evented} = 42
counter   unlabeled.total = 7
";
        assert_eq!(text, expected);
    }
}
