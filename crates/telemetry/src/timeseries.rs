//! Fixed-capacity time-series history: periodic delta snapshots.
//!
//! A metrics scrape is point-in-time — totals since spawn, never rates,
//! never history. This module retains *minutes* of history in bounded
//! memory: a [`Sampler`] thread cuts the registry at a configurable
//! interval, diffs each snapshot against the previous one into a
//! compact [`SeriesPoint`] (per-interval request/accept/evict deltas,
//! busy-vs-wall saturation, per-phase time, a 16-band latency
//! heatmap row), and deposits it into a [`SeriesRing`] that overwrites
//! its oldest points. One `TimeSeriesDump` wire exchange then returns
//! the whole ring as a [`TimeSeriesSnapshot`] (`ropuf-timeseries/v1`,
//! see [`crate::codec`]).
//!
//! The ring uses the same slot discipline as [`crate::TraceRing`]: a
//! `Relaxed` cursor claims a slot, the write happens under a `try_lock`
//! that drops the point (counted) rather than ever block the sampler,
//! and dumps sort the surviving points by sequence number.
//!
//! Deltas telescope: because the very first sample diffs against an
//! empty snapshot, the sum of any counter field across all points ever
//! produced equals the final registry total, exactly (the property
//! `metrics_props` pins down).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ropuf_numeric::bucket_floor;
use ropuf_numeric::histogram::BUCKETS;

use crate::registry::{MetricValue, Snapshot};

/// Hard cap on series capacity (also the codec's point-count cap):
/// 8192 points at the 280-byte wire size stay well inside the 4 MiB
/// frame limit.
pub const MAX_SERIES_POINTS: usize = 8_192;

/// Latency heatmap bands per point. Band `b` covers service totals in
/// `[2^b, 2^(b+1))` microseconds (band 0 also absorbs sub-microsecond
/// samples, the last band everything ≥ 32.8 ms).
pub const LATENCY_BANDS: usize = 16;

/// The per-request phases the serving layer records, in lifecycle
/// order. The phase vectors in [`SeriesPoint`] and the server's
/// `server.request.phase_ns{phase=..}` label values index by this
/// table.
pub const SERIES_PHASES: [&str; 5] = ["ready-wait", "decode", "handle", "flush", "flush-wait"];

/// The heatmap band a nanosecond service total falls into.
pub fn latency_band(total_ns: u64) -> usize {
    let us = total_ns / 1_000;
    if us == 0 {
        0
    } else {
        ((63 - us.leading_zeros()) as usize).min(LATENCY_BANDS - 1)
    }
}

/// Inclusive lower bound of heatmap band `band`, in microseconds.
pub fn band_floor_us(band: usize) -> u64 {
    if band == 0 {
        0
    } else {
        1u64 << band.min(LATENCY_BANDS - 1)
    }
}

/// One sampled interval: the delta between two successive registry
/// snapshots of the serving schema's well-known metrics, plus the
/// point-in-time gauges that don't difference.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Ring-assigned sequence number (total points cut so far).
    pub seq: u64,
    /// Nanoseconds since the sampler started, at cut time.
    pub at_ns: u64,
    /// Wall nanoseconds this point actually covers (since the previous
    /// cut; the configured interval plus scheduling slop).
    pub interval_ns: u64,
    /// Requests served during the interval (`server.requests` delta).
    pub requests: u64,
    /// Connections accepted during the interval.
    pub accepted: u64,
    /// Evictions (idle + slow) during the interval.
    pub evicted: u64,
    /// Connections open at cut time (gauge, not a delta).
    pub open: u64,
    /// Loop/worker busy nanoseconds accumulated during the interval,
    /// summed across lanes.
    pub busy_ns: u64,
    /// Loop/worker wall nanoseconds accumulated during the interval,
    /// summed across lanes. `busy_ns / wall_ns` is fleet utilization.
    pub wall_ns: u64,
    /// Per-phase nanoseconds spent during the interval, indexed by
    /// [`SERIES_PHASES`].
    pub phase_total_ns: [u64; SERIES_PHASES.len()],
    /// Per-phase sample counts during the interval, same indexing.
    pub phase_count: [u64; SERIES_PHASES.len()],
    /// One heatmap row: per-band request counts of the interval's
    /// `server.request.total_ns` samples (see [`latency_band`]).
    pub latency: [u64; LATENCY_BANDS],
}

/// Sum of every counter sample named `name` (wrapping — deltas of
/// monotone counters recover exactly).
fn counter_sum(s: &Snapshot, name: &str) -> u64 {
    s.metrics
        .iter()
        .filter(|m| m.name == name)
        .map(|m| match &m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(_) => 0,
        })
        .fold(0u64, u64::wrapping_add)
}

/// Aggregate (count, sum-ns) of every histogram named `name`, filtered
/// to one label value when `label` is given.
fn histogram_totals(s: &Snapshot, name: &str, label: Option<(&str, &str)>) -> (u64, u64) {
    let mut count = 0u64;
    let mut sum = 0u128;
    for m in &s.metrics {
        if m.name != name {
            continue;
        }
        if let Some((k, v)) = label {
            if !m.labels.iter().any(|(lk, lv)| lk == k && lv == v) {
                continue;
            }
        }
        if let MetricValue::Histogram(h) = &m.value {
            count = count.wrapping_add(h.count);
            sum = sum.wrapping_add(h.sum);
        }
    }
    (count, u64::try_from(sum).unwrap_or(u64::MAX))
}

/// Dense bucket occupancy of every histogram named `name`, summed
/// across label sets.
fn histogram_buckets(s: &Snapshot, name: &str) -> Vec<u64> {
    let mut out = vec![0u64; BUCKETS];
    for m in &s.metrics {
        if m.name != name {
            continue;
        }
        if let MetricValue::Histogram(h) = &m.value {
            for &(index, c) in &h.buckets {
                if let Some(slot) = out.get_mut(index as usize) {
                    *slot = slot.wrapping_add(c);
                }
            }
        }
    }
    out
}

impl SeriesPoint {
    /// Diffs two successive snapshots of the serving schema into one
    /// point. `seq` is assigned later by the ring. Counter fields are
    /// `next - prev` (wrapping, exact for monotone counters); `open` is
    /// `next`'s gauge value.
    pub fn between(prev: &Snapshot, next: &Snapshot, at_ns: u64, interval_ns: u64) -> Self {
        let delta = |name: &str| counter_sum(next, name).wrapping_sub(counter_sum(prev, name));
        let mut phase_total_ns = [0u64; SERIES_PHASES.len()];
        let mut phase_count = [0u64; SERIES_PHASES.len()];
        for (slot, phase) in SERIES_PHASES.iter().enumerate() {
            let label = Some(("phase", *phase));
            let (pc, ps) = histogram_totals(prev, "server.request.phase_ns", label);
            let (nc, ns) = histogram_totals(next, "server.request.phase_ns", label);
            phase_count[slot] = nc.wrapping_sub(pc);
            phase_total_ns[slot] = ns.wrapping_sub(ps);
        }
        let prev_buckets = histogram_buckets(prev, "server.request.total_ns");
        let next_buckets = histogram_buckets(next, "server.request.total_ns");
        let mut latency = [0u64; LATENCY_BANDS];
        for (index, (n, p)) in next_buckets.iter().zip(&prev_buckets).enumerate() {
            let d = n.wrapping_sub(*p);
            if d != 0 {
                latency[latency_band(bucket_floor(index))] =
                    latency[latency_band(bucket_floor(index))].wrapping_add(d);
            }
        }
        Self {
            seq: 0,
            at_ns,
            interval_ns,
            requests: delta("server.requests"),
            accepted: delta("server.connections.accepted"),
            evicted: delta("server.evicted"),
            open: counter_sum(next, "server.connections.open"),
            busy_ns: delta("server.worker.busy_ns"),
            wall_ns: delta("server.worker.wall_ns"),
            phase_total_ns,
            phase_count,
            latency,
        }
    }
}

struct SeriesInner {
    cursor: AtomicU64,
    dropped: AtomicU64,
    interval_ns: u64,
    slots: Vec<Mutex<Option<SeriesPoint>>>,
}

/// The fixed-capacity point ring. Clones share the same slots.
#[derive(Clone)]
pub struct SeriesRing {
    inner: Arc<SeriesInner>,
}

impl std::fmt::Debug for SeriesRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesRing")
            .field("capacity", &self.capacity())
            .field("sampled", &self.sampled())
            .field("interval_ns", &self.interval_ns())
            .finish()
    }
}

fn unpoison<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SeriesRing {
    /// A ring holding the most recent `capacity` points (clamped to
    /// `1..=`[`MAX_SERIES_POINTS`]). `interval` is the configured
    /// sampling cadence, carried into snapshots so a reader can render
    /// a time axis without guessing.
    pub fn new(capacity: usize, interval: Duration) -> Self {
        let capacity = capacity.clamp(1, MAX_SERIES_POINTS);
        Self {
            inner: Arc::new(SeriesInner {
                cursor: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                interval_ns: u64::try_from(interval.as_nanos()).unwrap_or(u64::MAX),
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Total points ever cut (wrapped-out ones included).
    pub fn sampled(&self) -> u64 {
        self.inner.cursor.load(Ordering::Relaxed)
    }

    /// Points dropped because their slot was held by a dump in
    /// progress (the sampler never blocks).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The configured sampling interval in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.inner.interval_ns
    }

    /// Deposits a point, overwriting the oldest. `point.seq` is
    /// assigned by the ring.
    pub fn push(&self, mut point: SeriesPoint) {
        let seq = self.inner.cursor.fetch_add(1, Ordering::Relaxed);
        point.seq = seq;
        let slot = (seq % self.inner.slots.len() as u64) as usize;
        match self.inner.slots[slot].try_lock() {
            Ok(mut guard) => *guard = Some(point),
            Err(_) => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The ring's current contents, oldest first.
    pub fn dump(&self) -> Vec<SeriesPoint> {
        let mut out: Vec<SeriesPoint> = self
            .inner
            .slots
            .iter()
            .filter_map(|slot| unpoison(slot).clone())
            .collect();
        out.sort_by_key(|p| p.seq);
        out
    }
}

/// A dumped ring plus its bookkeeping — the payload of a
/// `TimeSeriesDump` wire exchange (`ropuf-timeseries/v1`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeriesSnapshot {
    /// Total points ever cut (wrapped-out ones included).
    pub sampled: u64,
    /// The configured sampling interval in nanoseconds (0 when no
    /// sampler is attached).
    pub interval_ns: u64,
    /// The surviving points, oldest first.
    pub points: Vec<SeriesPoint>,
}

impl TimeSeriesSnapshot {
    /// Freezes a ring.
    pub fn from_ring(ring: &SeriesRing) -> Self {
        Self {
            sampled: ring.sampled(),
            interval_ns: ring.interval_ns(),
            points: ring.dump(),
        }
    }
}

/// The sampler thread: cuts `source()` every `interval`, diffs against
/// the previous cut, deposits into the ring. Stops (and joins) on
/// [`Sampler::stop`] or drop.
pub struct Sampler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("running", &self.thread.is_some())
            .finish()
    }
}

impl Sampler {
    /// Spawns the sampler thread. The first cut diffs against an empty
    /// snapshot, so the series telescopes: summing any delta field over
    /// every point ever produced yields the registry total exactly.
    pub fn start<F>(ring: SeriesRing, interval: Duration, source: F) -> Self
    where
        F: Fn() -> Snapshot + Send + 'static,
    {
        let interval = interval.max(Duration::from_millis(1));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("ropuf-sampler".into())
            .spawn(move || {
                let started = Instant::now();
                let mut prev = Snapshot {
                    metrics: Vec::new(),
                };
                let mut prev_at = started;
                loop {
                    let (lock, condvar) = &*stop_flag;
                    let stopped = unpoison(lock);
                    let (stopped, _) = condvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    let now = Instant::now();
                    let next = source();
                    let at_ns = u64::try_from(now.saturating_duration_since(started).as_nanos())
                        .unwrap_or(u64::MAX);
                    let interval_ns =
                        u64::try_from(now.saturating_duration_since(prev_at).as_nanos())
                            .unwrap_or(u64::MAX);
                    ring.push(SeriesPoint::between(&prev, &next, at_ns, interval_ns));
                    prev = next;
                    prev_at = now;
                }
            })
            .expect("spawn sampler thread");
        Self {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the sampler thread and joins it. Idempotent.
    pub fn stop(&mut self) {
        let (lock, condvar) = &*self.stop;
        *unpoison(lock) = true;
        condvar.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn latency_bands_are_power_of_two_microseconds() {
        assert_eq!(latency_band(0), 0);
        assert_eq!(latency_band(999), 0);
        assert_eq!(latency_band(1_999), 0);
        assert_eq!(latency_band(2_000), 1);
        assert_eq!(latency_band(3_999), 1);
        assert_eq!(latency_band(4_000), 2);
        assert_eq!(latency_band(1_000_000), 9); // 1000µs → [512, 1024)µs? no: 1000µs → band 9
        assert_eq!(latency_band(u64::MAX), LATENCY_BANDS - 1);
        assert_eq!(band_floor_us(0), 0);
        assert_eq!(band_floor_us(1), 2);
        assert_eq!(band_floor_us(9), 512);
        // Band floors bracket the band's members.
        for ns in [1_500u64, 70_000, 9_000_000] {
            let b = latency_band(ns);
            assert!(band_floor_us(b) <= ns / 1_000);
            if b + 1 < LATENCY_BANDS {
                assert!(ns / 1_000 < band_floor_us(b + 1) * 2 || b == 0);
            }
        }
    }

    #[test]
    fn deltas_telescope_to_the_final_totals() {
        let registry = Registry::new();
        let requests = registry.counter("server.requests", &[("backend", "test")]);
        let open = registry.gauge("server.connections.open", &[("backend", "test")]);
        let phase = registry.histogram(
            "server.request.phase_ns",
            &[("backend", "test"), ("phase", "handle")],
        );
        let mut prev = Snapshot {
            metrics: Vec::new(),
        };
        let mut summed_requests = 0u64;
        let mut summed_phase_ns = 0u64;
        for round in 1..=5u64 {
            for i in 0..round * 3 {
                requests.inc();
                phase.record(i * 100);
            }
            open.set(round);
            let next = registry.snapshot();
            let point = SeriesPoint::between(&prev, &next, round, round);
            summed_requests += point.requests;
            summed_phase_ns += point.phase_total_ns[2];
            assert_eq!(point.open, round);
            prev = next;
        }
        assert_eq!(summed_requests, requests.get());
        let final_hist = registry.snapshot();
        let (_, total_ns) = histogram_totals(
            &final_hist,
            "server.request.phase_ns",
            Some(("phase", "handle")),
        );
        assert_eq!(summed_phase_ns, total_ns, "phase deltas telescope");
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest() {
        let ring = SeriesRing::new(4, Duration::from_millis(250));
        for i in 0..9u64 {
            ring.push(SeriesPoint {
                requests: i,
                ..SeriesPoint::default()
            });
        }
        let snap = TimeSeriesSnapshot::from_ring(&ring);
        assert_eq!(snap.sampled, 9);
        assert_eq!(snap.interval_ns, 250_000_000);
        let seqs: Vec<u64> = snap.points.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, [5, 6, 7, 8]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn capacity_is_clamped() {
        let z = SeriesRing::new(0, Duration::ZERO);
        assert_eq!(z.capacity(), 1);
        assert_eq!(
            SeriesRing::new(usize::MAX, Duration::ZERO).capacity(),
            MAX_SERIES_POINTS
        );
    }

    #[test]
    fn sampler_thread_cuts_points_and_stops() {
        let registry = Registry::new();
        let requests = registry.counter("server.requests", &[("backend", "test")]);
        let ring = SeriesRing::new(64, Duration::from_millis(2));
        let source = {
            let registry = registry.clone();
            move || registry.snapshot()
        };
        let mut sampler = Sampler::start(ring.clone(), Duration::from_millis(2), source);
        let deadline = Instant::now() + Duration::from_secs(5);
        while ring.sampled() < 3 && Instant::now() < deadline {
            requests.inc();
            std::thread::sleep(Duration::from_millis(1));
        }
        sampler.stop();
        let sampled = ring.sampled();
        assert!(sampled >= 3, "sampler should have cut points");
        // Stopped means stopped: no further points arrive.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(ring.sampled(), sampled);
        // Deltas over the produced points telescope to the totals at
        // the last cut (no pushes were dropped: single writer).
        let total: u64 = ring.dump().iter().map(|p| p.requests).sum();
        assert!(total <= requests.get());
    }
}
