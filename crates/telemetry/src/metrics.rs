//! Striped hot-path metric primitives.
//!
//! The serving stack increments counters millions of times per second
//! from many threads. A single shared `AtomicU64` — let alone one
//! bumped with `SeqCst`, as the old ad-hoc server `Stats` did — makes
//! every increment a cross-core cache-line ping. The primitives here
//! stripe each metric across [`STRIPES`] cache-line-padded cells; a
//! thread picks its cell once (a thread-local round-robin assignment)
//! and then increments with `Relaxed` ordering, so the steady-state
//! cost is an uncontended local add. Reads aggregate every cell, which
//! is exact for counters and (by wrapping arithmetic) for gauges: the
//! sum of all increments minus all decrements is recovered regardless
//! of which cell each landed in.
//!
//! Latency histograms stripe a [`Histogram`] per cell behind a `Mutex`;
//! with one writer per stripe in the common case the lock is
//! uncontended, and a snapshot merges the stripes — exact, by the
//! histogram's merge property.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use ropuf_numeric::Histogram;

/// Cells per striped metric. A power of two comfortably above the
/// loop/worker counts the servers run with, so distinct hot threads
/// land on distinct cache lines.
pub const STRIPES: usize = 16;

/// Histogram stripes: recording takes a per-stripe lock, so fewer,
/// heavier stripes (a [`Histogram`] is ~15 KiB) still leave the common
/// case uncontended.
const HIST_STRIPES: usize = 8;

/// One cache line per cell: the padding is the whole point — two
/// threads incrementing neighboring cells must not share a line.
#[repr(align(64))]
#[derive(Default)]
struct Cell(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's cell index, assigned round-robin at first use.
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

fn stripe_index() -> usize {
    STRIPE.with(|s| *s)
}

fn new_cells() -> Arc<[Cell]> {
    (0..STRIPES).map(|_| Cell::default()).collect()
}

/// A monotonically increasing event count. Cloning shares the cells:
/// clones are handles onto the same metric.
#[derive(Clone)]
pub struct Counter {
    cells: Arc<[Cell]>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A zeroed counter (standalone; [`Registry`](crate::Registry)
    /// hands out registered ones).
    pub fn new() -> Self {
        Self { cells: new_cells() }
    }

    /// Adds one. `Relaxed`, striped: nanoseconds on the hot path.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The exact total across all cells.
    pub fn get(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A value that moves both ways (open connections, registry entries).
/// Decrements add the two's-complement negation, so the wrapping sum
/// over all cells is exact even when an increment and its matching
/// decrement land in different cells.
#[derive(Clone)]
pub struct Gauge {
    cells: Arc<[Cell]>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self { cells: new_cells() }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: u64) {
        self.cells[stripe_index()]
            .0
            .fetch_add(n.wrapping_neg(), Ordering::Relaxed);
    }

    /// The exact current value (increments minus decrements), assuming
    /// the gauge never goes logically negative.
    pub fn get(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Moves the gauge to `value` by applying the wrapping difference —
    /// for sampled gauges (shard sizes, recovery reports) refreshed
    /// from an authoritative source at snapshot time. Racy against
    /// concurrent `inc`/`dec` only in the way any sample is.
    pub fn set(&self, value: u64) {
        let diff = value.wrapping_sub(self.get());
        if diff != 0 {
            self.add(diff);
        }
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// A striped, mergeable latency histogram (nanosecond samples).
#[derive(Clone)]
pub struct TimerHistogram {
    stripes: Arc<[Mutex<Histogram>]>,
}

impl Default for TimerHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn unpoison(stripe: &Mutex<Histogram>) -> MutexGuard<'_, Histogram> {
    // A histogram is valid after any interrupted record; poisoning
    // carries no information here.
    stripe.lock().unwrap_or_else(|e| e.into_inner())
}

impl TimerHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            stripes: (0..HIST_STRIPES)
                .map(|_| Mutex::new(Histogram::new()))
                .collect(),
        }
    }

    /// Records one sample. Never drops: tries the thread's own stripe,
    /// then any free stripe, and only blocks (briefly, on a
    /// record-duration critical section) if every stripe is busy.
    pub fn record(&self, value: u64) {
        let own = stripe_index() % HIST_STRIPES;
        if let Ok(mut g) = self.stripes[own].try_lock() {
            g.record(value);
            return;
        }
        for offset in 1..HIST_STRIPES {
            if let Ok(mut g) = self.stripes[(own + offset) % HIST_STRIPES].try_lock() {
                g.record(value);
                return;
            }
        }
        unpoison(&self.stripes[own]).record(value);
    }

    /// Records a [`Duration`] in nanoseconds (saturating).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merges every stripe into one exact [`Histogram`] — identical to
    /// having recorded all samples into a single histogram.
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for stripe in self.stripes.iter() {
            out.merge(&unpoison(stripe));
        }
        out
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| unpoison(s).count()).sum()
    }
}

impl fmt::Debug for TimerHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TimerHistogram")
            .field(&self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_is_exact_across_threads() {
        let counter = Counter::new();
        thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn gauge_survives_cross_cell_inc_dec() {
        let gauge = Gauge::new();
        thread::scope(|scope| {
            // Half the threads only increment, half only decrement:
            // matched pairs always land in different cells.
            for i in 0..8 {
                let gauge = gauge.clone();
                scope.spawn(move || {
                    for _ in 0..5_000 {
                        if i % 2 == 0 {
                            gauge.inc();
                        } else {
                            gauge.dec();
                        }
                    }
                });
            }
        });
        assert_eq!(gauge.get(), 0);
        gauge.add(7);
        assert_eq!(gauge.get(), 7);
    }

    #[test]
    fn histogram_records_never_drop() {
        let hist = TimerHistogram::new();
        thread::scope(|scope| {
            for t in 0..8u64 {
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        hist.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(hist.count(), 16_000);
        assert_eq!(hist.merged().count(), 16_000);
    }
}
