//! Fixed-capacity slow-request trace ring.
//!
//! Percentiles say *that* a tail exists; traces say *why*. Every
//! request slower than the server's configured threshold deposits a
//! [`TraceRecord`] — message type, hashed device id, per-phase
//! nanosecond timings, worker/loop id — into a [`TraceRing`]: a
//! fixed-capacity ring that overwrites its oldest entries and never
//! blocks the serving path. The cursor is a `Relaxed` atomic
//! `fetch_add`; the claimed slot is written under a `try_lock` that, if
//! a concurrent dump holds the slot, drops the record rather than wait
//! (counted in [`TraceRing::dropped`]). Dumps are cold-path and
//! lock-free for writers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hard cap on ring capacity (also the codec's record-count cap).
pub const MAX_TRACE_RECORDS: usize = 65_536;

/// One slow request, as seen by a server backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Ring-assigned sequence number (total slow requests so far).
    pub seq: u64,
    /// `ropuf-wire/v1` request type byte (e.g. `0x03` Authenticate).
    pub msg_type: u8,
    /// SplitMix64 hash of the device id (0 when the message carries
    /// none) — correlates traces per device without logging the id.
    pub device_hash: u64,
    /// Ready-wait: readiness-notification (epoll dispatch, or the
    /// accept-queue claim in the blocking pool) to decode start — the
    /// time the request sat decodable but unserviced.
    pub ready_ns: u64,
    /// Time spent decoding the frame payload.
    pub decode_ns: u64,
    /// Time spent in the request handler (verifier work).
    pub handle_ns: u64,
    /// Time spent encoding + flushing the response toward the socket.
    pub flush_ns: u64,
    /// Flush-wait: out-buffer residency — response queued until the
    /// socket actually drained its last byte (0 on the blocking
    /// backend, whose write is synchronous and billed to `flush_ns`).
    pub flush_wait_ns: u64,
    /// Whole-request latency as the server can see it (ready-wait
    /// through flush-wait).
    pub total_ns: u64,
    /// Worker index (blocking pool) or event-loop index (evented).
    pub worker: u32,
}

struct RingInner {
    cursor: AtomicU64,
    dropped: AtomicU64,
    slots: Vec<Mutex<Option<TraceRecord>>>,
}

/// The fixed-capacity ring. Clones share the same slots.
#[derive(Clone)]
pub struct TraceRing {
    inner: Arc<RingInner>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceRing {
    /// A ring holding the most recent `capacity` slow requests
    /// (clamped to `1..=`[`MAX_TRACE_RECORDS`]).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.clamp(1, MAX_TRACE_RECORDS);
        Self {
            inner: Arc::new(RingInner {
                cursor: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Total records ever pushed (wrapped-out ones included).
    pub fn recorded(&self) -> u64 {
        self.inner.cursor.load(Ordering::Relaxed)
    }

    /// Records dropped because their slot was busy (a concurrent dump).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Deposits a record, overwriting the oldest. `record.seq` is
    /// assigned by the ring. Never blocks: if the slot is held by a
    /// dump in progress, the record is dropped and counted.
    pub fn push(&self, mut record: TraceRecord) {
        let seq = self.inner.cursor.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let slot = (seq % self.inner.slots.len() as u64) as usize;
        match self.inner.slots[slot].try_lock() {
            Ok(mut guard) => *guard = Some(record),
            Err(_) => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The ring's current contents, oldest first.
    pub fn dump(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self
            .inner
            .slots
            .iter()
            .filter_map(|slot| *slot.lock().unwrap_or_else(|e| e.into_inner()))
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }
}

/// A dumped ring plus its bookkeeping — the payload of a `TraceDump`
/// wire exchange (`ropuf-trace/v1`, see [`crate::codec`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Total slow requests observed (wrapped-out ones included).
    pub recorded: u64,
    /// Records lost to slot contention.
    pub dropped: u64,
    /// The surviving records, oldest first.
    pub records: Vec<TraceRecord>,
}

impl TraceSnapshot {
    /// Freezes a ring.
    pub fn from_ring(ring: &TraceRing) -> Self {
        Self {
            recorded: ring.recorded(),
            dropped: ring.dropped(),
            records: ring.dump(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(v: u64) -> TraceRecord {
        TraceRecord {
            seq: 0,
            msg_type: 3,
            device_hash: v,
            ready_ns: v * 4,
            decode_ns: v,
            handle_ns: v * 2,
            flush_ns: v * 3,
            flush_wait_ns: v * 5,
            total_ns: v * 15,
            worker: 1,
        }
    }

    #[test]
    fn wraparound_keeps_the_newest() {
        let ring = TraceRing::new(4);
        for v in 0..10u64 {
            ring.push(record(v));
        }
        let dump = ring.dump();
        assert_eq!(ring.recorded(), 10);
        assert_eq!(dump.len(), 4);
        let seqs: Vec<u64> = dump.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9], "oldest wrapped out, order preserved");
        assert_eq!(dump[0].device_hash, 6);
    }

    #[test]
    fn under_capacity_dump_is_complete_and_ordered() {
        let ring = TraceRing::new(16);
        for v in 0..5u64 {
            ring.push(record(v));
        }
        let dump = ring.dump();
        assert_eq!(dump.len(), 5);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn capacity_is_clamped() {
        assert_eq!(TraceRing::new(0).capacity(), 1);
        assert_eq!(TraceRing::new(usize::MAX).capacity(), MAX_TRACE_RECORDS);
    }

    #[test]
    fn concurrent_pushes_account_for_every_record() {
        let ring = TraceRing::new(64);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ring = ring.clone();
                scope.spawn(move || {
                    for v in 0..1_000u64 {
                        ring.push(record(v));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 8_000);
        // Concurrent writers hitting the same slot may drop records
        // (never block) — but every slot has been written many times,
        // so the dump is full and strictly ordered.
        let dump = ring.dump();
        assert_eq!(dump.len(), 64);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
