//! The `ropuf-metrics/v1`, `ropuf-trace/v1` and `ropuf-timeseries/v1`
//! binary codecs.
//!
//! A [`Snapshot`] travels the wire inside a `Response::MetricsBin`
//! frame; a [`TraceSnapshot`] inside `Response::TraceBin`; a
//! [`TimeSeriesSnapshot`] inside `Response::TimeSeriesBin`. All three
//! blobs follow the workspace codec discipline established by
//! `ropuf-wire/v1` and the `ropuf-verifier/v2` store: all integers
//! little-endian, explicit lengths checked against both a semantic cap
//! and the bytes actually remaining *before* any allocation, decoding
//! that never panics and never over-reads (every anomaly is a typed
//! [`MetricsDecodeError`]), and a trailing CRC-32 over everything that
//! precedes it, so any single corrupted byte is detected.
//!
//! ```text
//! metrics:    "RPUFMET1" | version u16 | metric count u32
//!             per metric: kind u8 (0 counter | 1 gauge | 2 histogram)
//!                         name (u16 len + bytes)
//!                         label count u8, per label: key (u16+bytes),
//!                                                    value (u16+bytes)
//!                         counter/gauge: value u64
//!                         histogram: count u64 | sum u128 | min u64
//!                                    | max u64 | bucket count u32
//!                                    | per bucket: index u32, count u64
//!             | CRC-32 (u32)
//!
//! trace:      "RPUFTRC1" | version u16 | recorded u64 | dropped u64
//!             | record count u32
//!             per record: seq u64 | msg_type u8 | device_hash u64
//!                         | ready_ns u64 | decode_ns u64
//!                         | handle_ns u64 | flush_ns u64
//!                         | flush_wait_ns u64 | total_ns u64
//!                         | worker u32
//!             | CRC-32 (u32)
//!
//! timeseries: "RPUFTSR1" | version u16 | sampled u64 | interval_ns u64
//!             | point count u32
//!             per point: seq u64 | at_ns u64 | interval_ns u64
//!                        | requests u64 | accepted u64 | evicted u64
//!                        | open u64 | busy_ns u64 | wall_ns u64
//!                        | phase_total_ns 5 x u64
//!                        | phase_count 5 x u64
//!                        | latency bands 16 x u64
//!             | CRC-32 (u32)
//! ```
//!
//! This crate is dependency-free below `ropuf_numeric`, so it carries
//! its own little-endian cursor and CRC-32 rather than borrowing
//! `ropuf_proto`'s (the verifier must export metrics without linking
//! the wire protocol).

use std::fmt;

use ropuf_numeric::histogram::BUCKETS;
use ropuf_numeric::SparseHistogramError;

use crate::registry::{
    HistogramSnapshot, MetricSample, MetricValue, Snapshot, MAX_LABELS, MAX_LABEL_KEY,
    MAX_LABEL_VALUE, MAX_METRICS, MAX_NAME,
};
use crate::timeseries::{
    SeriesPoint, TimeSeriesSnapshot, LATENCY_BANDS, MAX_SERIES_POINTS, SERIES_PHASES,
};
use crate::trace::{TraceRecord, TraceSnapshot, MAX_TRACE_RECORDS};

/// Magic prefix of a `ropuf-metrics/v1` blob.
pub const METRICS_MAGIC: &[u8; 8] = b"RPUFMET1";
/// Magic prefix of a `ropuf-trace/v1` blob.
pub const TRACE_MAGIC: &[u8; 8] = b"RPUFTRC1";
/// Magic prefix of a `ropuf-timeseries/v1` blob.
pub const TIMESERIES_MAGIC: &[u8; 8] = b"RPUFTSR1";
/// Version both codecs currently speak.
pub const CODEC_VERSION: u16 = 1;

// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table built at compile
// time — the same polynomial the durable store and its WAL use.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a metrics or trace blob failed to decode. Decoding never panics
/// and never over-reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsDecodeError {
    /// The input ended before a field was complete.
    TooShort {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The blob doesn't start with the expected magic.
    BadMagic,
    /// An unknown codec version.
    BadVersion(u16),
    /// The trailing CRC-32 doesn't match the content.
    BadCrc {
        /// CRC declared in the trailer.
        declared: u32,
        /// CRC computed over the content.
        computed: u32,
    },
    /// Bytes left over after a complete decode.
    TrailingBytes(usize),
    /// A declared length or count exceeds its cap or the remaining
    /// input.
    LengthOutOfBounds {
        /// Which field declared it.
        field: &'static str,
        /// The declared length or count.
        declared: u64,
        /// The largest acceptable value here.
        limit: u64,
    },
    /// An unknown metric-kind byte.
    UnknownKind(u8),
    /// A name or label is not valid UTF-8.
    BadUtf8(&'static str),
    /// A histogram's exported parts fail reconstruction validation.
    BadHistogram(SparseHistogramError),
}

impl fmt::Display for MetricsDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsDecodeError::TooShort { needed, remaining } => {
                write!(
                    f,
                    "input ended early: needed {needed} bytes, {remaining} left"
                )
            }
            MetricsDecodeError::BadMagic => write!(f, "bad magic"),
            MetricsDecodeError::BadVersion(v) => write!(f, "unknown codec version {v}"),
            MetricsDecodeError::BadCrc { declared, computed } => {
                write!(
                    f,
                    "crc mismatch: declared {declared:#010x}, computed {computed:#010x}"
                )
            }
            MetricsDecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after a complete blob")
            }
            MetricsDecodeError::LengthOutOfBounds {
                field,
                declared,
                limit,
            } => write!(f, "{field}: declared {declared} exceeds limit {limit}"),
            MetricsDecodeError::UnknownKind(k) => write!(f, "unknown metric kind {k:#04x}"),
            MetricsDecodeError::BadUtf8(field) => write!(f, "{field}: not valid UTF-8"),
            MetricsDecodeError::BadHistogram(e) => write!(f, "invalid histogram parts: {e}"),
        }
    }
}

impl std::error::Error for MetricsDecodeError {}

impl From<SparseHistogramError> for MetricsDecodeError {
    fn from(e: SparseHistogramError) -> Self {
        MetricsDecodeError::BadHistogram(e)
    }
}

/// Bounds-checked little-endian read cursor (decode-only, never
/// panics).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn finish(&self) -> Result<(), MetricsDecodeError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(MetricsDecodeError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MetricsDecodeError> {
        if self.remaining() < n {
            return Err(MetricsDecodeError::TooShort {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, MetricsDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, MetricsDecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, MetricsDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, MetricsDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn u128(&mut self) -> Result<u128, MetricsDecodeError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("len 16"),
        ))
    }

    /// A `u16`-length-prefixed UTF-8 string, capped at
    /// `min(cap, remaining)` before any read.
    fn str(&mut self, field: &'static str, cap: usize) -> Result<String, MetricsDecodeError> {
        let declared = self.u16()? as usize;
        let limit = cap.min(self.remaining());
        if declared > limit {
            return Err(MetricsDecodeError::LengthOutOfBounds {
                field,
                declared: declared as u64,
                limit: limit as u64,
            });
        }
        std::str::from_utf8(self.take(declared)?)
            .map(str::to_owned)
            .map_err(|_| MetricsDecodeError::BadUtf8(field))
    }

    /// A `u32` element count, capped at `min(cap, remaining / min_size)`
    /// — an element occupies at least `min_size` bytes, so a larger
    /// count is always forged.
    fn count(
        &mut self,
        field: &'static str,
        cap: usize,
        min_size: usize,
    ) -> Result<usize, MetricsDecodeError> {
        let declared = self.u32()? as usize;
        let limit = cap.min(self.remaining() / min_size.max(1));
        if declared > limit {
            return Err(MetricsDecodeError::LengthOutOfBounds {
                field,
                declared: declared as u64,
                limit: limit as u64,
            });
        }
        Ok(declared)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("caps bound name/label lengths");
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
}

/// Splits off and verifies the CRC trailer, returning the content.
fn checked_content(bytes: &[u8]) -> Result<&[u8], MetricsDecodeError> {
    // Smallest possible blob: magic + version + CRC.
    if bytes.len() < 14 {
        return Err(MetricsDecodeError::TooShort {
            needed: 14,
            remaining: bytes.len(),
        });
    }
    let (content, trailer) = bytes.split_at(bytes.len() - 4);
    let declared = u32::from_le_bytes(trailer.try_into().expect("len 4"));
    let computed = crc32(content);
    if declared != computed {
        return Err(MetricsDecodeError::BadCrc { declared, computed });
    }
    Ok(content)
}

const KIND_COUNTER: u8 = 0;
const KIND_GAUGE: u8 = 1;
const KIND_HISTOGRAM: u8 = 2;

impl Snapshot {
    /// Encodes the snapshot as a `ropuf-metrics/v1` blob. Canonical:
    /// the same snapshot always produces the same bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(METRICS_MAGIC);
        put_u16(&mut out, CODEC_VERSION);
        let count = u32::try_from(self.metrics.len().min(MAX_METRICS)).expect("capped");
        put_u32(&mut out, count);
        for m in self.metrics.iter().take(MAX_METRICS) {
            match &m.value {
                MetricValue::Counter(_) => out.push(KIND_COUNTER),
                MetricValue::Gauge(_) => out.push(KIND_GAUGE),
                MetricValue::Histogram(_) => out.push(KIND_HISTOGRAM),
            }
            put_str(&mut out, &m.name);
            out.push(u8::try_from(m.labels.len()).expect("caps bound label count"));
            for (k, v) in &m.labels {
                put_str(&mut out, k);
                put_str(&mut out, v);
            }
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => put_u64(&mut out, *v),
                MetricValue::Histogram(h) => {
                    put_u64(&mut out, h.count);
                    out.extend_from_slice(&h.sum.to_le_bytes());
                    put_u64(&mut out, h.min);
                    put_u64(&mut out, h.max);
                    put_u32(
                        &mut out,
                        u32::try_from(h.buckets.len()).expect("<= BUCKETS"),
                    );
                    for &(index, c) in &h.buckets {
                        put_u32(&mut out, index);
                        put_u64(&mut out, c);
                    }
                }
            }
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decodes a `ropuf-metrics/v1` blob. Bounds-checked end to end;
    /// every histogram's parts are re-validated, so a decoded snapshot
    /// can always compute its quantiles safely.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, MetricsDecodeError> {
        let content = checked_content(bytes)?;
        let mut r = Cursor::new(content);
        if r.take(8)? != METRICS_MAGIC {
            return Err(MetricsDecodeError::BadMagic);
        }
        let version = r.u16()?;
        if version != CODEC_VERSION {
            return Err(MetricsDecodeError::BadVersion(version));
        }
        // A metric occupies at least kind + name len + label count +
        // an 8-byte value.
        let count = r.count("metrics", MAX_METRICS, 12)?;
        let mut metrics = Vec::new();
        for _ in 0..count {
            let kind = r.u8()?;
            let name = r.str("name", MAX_NAME)?;
            let label_count = r.u8()? as usize;
            if label_count > MAX_LABELS {
                return Err(MetricsDecodeError::LengthOutOfBounds {
                    field: "labels",
                    declared: label_count as u64,
                    limit: MAX_LABELS as u64,
                });
            }
            let mut labels = Vec::with_capacity(label_count);
            for _ in 0..label_count {
                let k = r.str("label key", MAX_LABEL_KEY)?;
                let v = r.str("label value", MAX_LABEL_VALUE)?;
                labels.push((k, v));
            }
            let value = match kind {
                KIND_COUNTER => MetricValue::Counter(r.u64()?),
                KIND_GAUGE => MetricValue::Gauge(r.u64()?),
                KIND_HISTOGRAM => {
                    let sample_count = r.u64()?;
                    let sum = r.u128()?;
                    let min = r.u64()?;
                    let max = r.u64()?;
                    let bucket_count = r.count("buckets", BUCKETS, 12)?;
                    let mut buckets = Vec::with_capacity(bucket_count);
                    for _ in 0..bucket_count {
                        let index = r.u32()?;
                        let c = r.u64()?;
                        buckets.push((index, c));
                    }
                    let snapshot = HistogramSnapshot {
                        count: sample_count,
                        sum,
                        min,
                        max,
                        buckets,
                    };
                    snapshot.to_histogram()?; // validate, then keep parts
                    MetricValue::Histogram(snapshot)
                }
                other => return Err(MetricsDecodeError::UnknownKind(other)),
            };
            metrics.push(MetricSample {
                name,
                labels,
                value,
            });
        }
        r.finish()?;
        Ok(Snapshot { metrics })
    }
}

impl TraceSnapshot {
    /// Encodes the trace dump as a `ropuf-trace/v1` blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(TRACE_MAGIC);
        put_u16(&mut out, CODEC_VERSION);
        put_u64(&mut out, self.recorded);
        put_u64(&mut out, self.dropped);
        let count = self.records.len().min(MAX_TRACE_RECORDS);
        put_u32(&mut out, u32::try_from(count).expect("capped"));
        for r in self.records.iter().take(MAX_TRACE_RECORDS) {
            put_u64(&mut out, r.seq);
            out.push(r.msg_type);
            put_u64(&mut out, r.device_hash);
            put_u64(&mut out, r.ready_ns);
            put_u64(&mut out, r.decode_ns);
            put_u64(&mut out, r.handle_ns);
            put_u64(&mut out, r.flush_ns);
            put_u64(&mut out, r.flush_wait_ns);
            put_u64(&mut out, r.total_ns);
            put_u32(&mut out, r.worker);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decodes a `ropuf-trace/v1` blob.
    pub fn decode(bytes: &[u8]) -> Result<TraceSnapshot, MetricsDecodeError> {
        let content = checked_content(bytes)?;
        let mut r = Cursor::new(content);
        if r.take(8)? != TRACE_MAGIC {
            return Err(MetricsDecodeError::BadMagic);
        }
        let version = r.u16()?;
        if version != CODEC_VERSION {
            return Err(MetricsDecodeError::BadVersion(version));
        }
        let recorded = r.u64()?;
        let dropped = r.u64()?;
        // One record is 69 bytes on the wire.
        let count = r.count("trace records", MAX_TRACE_RECORDS, 69)?;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            records.push(TraceRecord {
                seq: r.u64()?,
                msg_type: r.u8()?,
                device_hash: r.u64()?,
                ready_ns: r.u64()?,
                decode_ns: r.u64()?,
                handle_ns: r.u64()?,
                flush_ns: r.u64()?,
                flush_wait_ns: r.u64()?,
                total_ns: r.u64()?,
                worker: r.u32()?,
            });
        }
        r.finish()?;
        Ok(TraceSnapshot {
            recorded,
            dropped,
            records,
        })
    }
}

/// Bytes one series point occupies on the wire: nine scalar `u64`s,
/// two per-phase vectors, one heatmap row.
const SERIES_POINT_SIZE: usize = 9 * 8 + SERIES_PHASES.len() * 8 * 2 + LATENCY_BANDS * 8;

impl TimeSeriesSnapshot {
    /// Encodes the series dump as a `ropuf-timeseries/v1` blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(TIMESERIES_MAGIC);
        put_u16(&mut out, CODEC_VERSION);
        put_u64(&mut out, self.sampled);
        put_u64(&mut out, self.interval_ns);
        let count = self.points.len().min(MAX_SERIES_POINTS);
        put_u32(&mut out, u32::try_from(count).expect("capped"));
        for p in self.points.iter().take(MAX_SERIES_POINTS) {
            put_u64(&mut out, p.seq);
            put_u64(&mut out, p.at_ns);
            put_u64(&mut out, p.interval_ns);
            put_u64(&mut out, p.requests);
            put_u64(&mut out, p.accepted);
            put_u64(&mut out, p.evicted);
            put_u64(&mut out, p.open);
            put_u64(&mut out, p.busy_ns);
            put_u64(&mut out, p.wall_ns);
            for v in p.phase_total_ns {
                put_u64(&mut out, v);
            }
            for v in p.phase_count {
                put_u64(&mut out, v);
            }
            for v in p.latency {
                put_u64(&mut out, v);
            }
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decodes a `ropuf-timeseries/v1` blob.
    pub fn decode(bytes: &[u8]) -> Result<TimeSeriesSnapshot, MetricsDecodeError> {
        let content = checked_content(bytes)?;
        let mut r = Cursor::new(content);
        if r.take(8)? != TIMESERIES_MAGIC {
            return Err(MetricsDecodeError::BadMagic);
        }
        let version = r.u16()?;
        if version != CODEC_VERSION {
            return Err(MetricsDecodeError::BadVersion(version));
        }
        let sampled = r.u64()?;
        let interval_ns = r.u64()?;
        let count = r.count("series points", MAX_SERIES_POINTS, SERIES_POINT_SIZE)?;
        let mut points = Vec::with_capacity(count);
        for _ in 0..count {
            let mut p = SeriesPoint {
                seq: r.u64()?,
                at_ns: r.u64()?,
                interval_ns: r.u64()?,
                requests: r.u64()?,
                accepted: r.u64()?,
                evicted: r.u64()?,
                open: r.u64()?,
                busy_ns: r.u64()?,
                wall_ns: r.u64()?,
                ..SeriesPoint::default()
            };
            for v in p.phase_total_ns.iter_mut() {
                *v = r.u64()?;
            }
            for v in p.phase_count.iter_mut() {
                *v = r.u64()?;
            }
            for v in p.latency.iter_mut() {
                *v = r.u64()?;
            }
            points.push(p);
        }
        r.finish()?;
        Ok(TimeSeriesSnapshot {
            sampled,
            interval_ns,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use crate::TraceRing;

    fn sample_snapshot() -> Snapshot {
        let registry = Registry::new();
        registry
            .counter(
                "server.requests",
                &[("backend", "evented"), ("msg", "auth")],
            )
            .add(12_345);
        registry.gauge("server.connections.open", &[]).add(42);
        let h = registry.histogram("server.request.phase_ns", &[("phase", "handle")]);
        for v in [150, 900, 1_500, 40_000, 1_000_000] {
            h.record(v);
        }
        registry.snapshot()
    }

    #[test]
    fn metrics_roundtrip_bit_for_bit() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).expect("own encoding decodes");
        assert_eq!(decoded, snap);
        // Canonical: re-encode is byte-identical.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::decode(&snap.encode()), Ok(snap));
    }

    #[test]
    fn trace_roundtrip_bit_for_bit() {
        let ring = TraceRing::new(8);
        for v in 0..20u64 {
            ring.push(TraceRecord {
                seq: 0,
                msg_type: 4,
                device_hash: v * 17,
                ready_ns: v * 7,
                decode_ns: v,
                handle_ns: v * 2,
                flush_ns: v * 3,
                flush_wait_ns: v * 11,
                total_ns: v * 24,
                worker: 2,
            });
        }
        let snap = TraceSnapshot::from_ring(&ring);
        let bytes = snap.encode();
        let decoded = TraceSnapshot::decode(&bytes).expect("own encoding decodes");
        assert_eq!(decoded, snap);
        assert_eq!(decoded.recorded, 20);
        assert_eq!(decoded.records.len(), 8);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn corruption_is_caught_by_the_crc() {
        let bytes = sample_snapshot().encode();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                Snapshot::decode(&bad).is_err(),
                "single-byte corruption at {pos} went undetected"
            );
        }
    }

    #[test]
    fn prefixes_and_soup_are_typed_errors() {
        let bytes = sample_snapshot().encode();
        for cut in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        assert_eq!(
            Snapshot::decode(b"not a metrics blob at all..."),
            Err(MetricsDecodeError::BadCrc {
                declared: u32::from_le_bytes(*b"l..."),
                computed: crc32(b"not a metrics blob at al"),
            })
        );
        // Trace magic on the metrics decoder (valid CRC, wrong magic).
        let trace = TraceSnapshot::default().encode();
        assert_eq!(Snapshot::decode(&trace), Err(MetricsDecodeError::BadMagic));
        assert_eq!(
            TraceSnapshot::decode(&sample_snapshot().encode()),
            Err(MetricsDecodeError::BadMagic)
        );
    }

    #[test]
    fn timeseries_roundtrip_bit_for_bit() {
        use crate::timeseries::SeriesRing;
        use std::time::Duration;
        let ring = SeriesRing::new(4, Duration::from_millis(500));
        for i in 0..7u64 {
            let mut p = SeriesPoint {
                at_ns: i * 500_000_000,
                interval_ns: 500_000_000 + i,
                requests: i * 100,
                accepted: i,
                evicted: i / 2,
                open: 40 + i,
                busy_ns: i * 90_000,
                wall_ns: i * 100_000,
                ..SeriesPoint::default()
            };
            for (slot, v) in p.phase_total_ns.iter_mut().enumerate() {
                *v = i * 1_000 + slot as u64;
            }
            for (slot, v) in p.phase_count.iter_mut().enumerate() {
                *v = i + slot as u64;
            }
            p.latency[(i % 16) as usize] = i * 3;
            ring.push(p);
        }
        let snap = TimeSeriesSnapshot::from_ring(&ring);
        let bytes = snap.encode();
        let decoded = TimeSeriesSnapshot::decode(&bytes).expect("own encoding decodes");
        assert_eq!(decoded, snap);
        assert_eq!(decoded.sampled, 7);
        assert_eq!(decoded.points.len(), 4);
        assert_eq!(decoded.interval_ns, 500_000_000);
        assert_eq!(decoded.encode(), bytes);
        // Wrong decoder on a valid blob is a typed magic error.
        assert_eq!(Snapshot::decode(&bytes), Err(MetricsDecodeError::BadMagic));
        assert_eq!(
            TimeSeriesSnapshot::decode(&sample_snapshot().encode()),
            Err(MetricsDecodeError::BadMagic)
        );
    }

    #[test]
    fn forged_series_count_cannot_over_allocate() {
        let mut content = Vec::new();
        content.extend_from_slice(TIMESERIES_MAGIC);
        put_u16(&mut content, CODEC_VERSION);
        put_u64(&mut content, 1);
        put_u64(&mut content, 1_000_000_000);
        put_u32(&mut content, u32::MAX);
        let crc = crc32(&content);
        put_u32(&mut content, crc);
        assert!(matches!(
            TimeSeriesSnapshot::decode(&content),
            Err(MetricsDecodeError::LengthOutOfBounds {
                field: "series points",
                ..
            })
        ));
    }

    #[test]
    fn forged_counts_cannot_over_allocate() {
        // A valid header declaring 4096 metrics backed by nothing: the
        // count cap must trip before any allocation.
        let mut content = Vec::new();
        content.extend_from_slice(METRICS_MAGIC);
        put_u16(&mut content, CODEC_VERSION);
        put_u32(&mut content, u32::MAX);
        let crc = crc32(&content);
        put_u32(&mut content, crc);
        assert!(matches!(
            Snapshot::decode(&content),
            Err(MetricsDecodeError::LengthOutOfBounds {
                field: "metrics",
                ..
            })
        ));
    }
}
