//! Fleet telemetry for the `ropuf` serving stack.
//!
//! Zero-dependency (below [`ropuf_numeric`]) observability primitives,
//! built for the workspace's threat model and performance envelope:
//!
//! * [`metrics`] — striped, cache-padded [`Counter`]s and [`Gauge`]s
//!   (`Relaxed` increments, exact aggregated reads) and mergeable
//!   [`TimerHistogram`]s, replacing the old per-server `SeqCst` stats.
//! * [`registry`] — an instantiable [`Registry`] of named, labeled
//!   metrics; [`Registry::snapshot`] freezes everything into a sorted,
//!   mergeable [`Snapshot`].
//! * [`trace`] — a fixed-capacity, never-blocking [`TraceRing`] that
//!   keeps a [`TraceRecord`] (message type, hashed device id, per-phase
//!   timings, worker id) for every request slower than a configurable
//!   threshold.
//! * [`timeseries`] — a [`Sampler`] thread that diffs successive
//!   registry snapshots into per-interval [`SeriesPoint`] deltas
//!   (rates, saturation, a latency heatmap row) retained in a
//!   fixed-capacity [`SeriesRing`] — minutes of history in bounded
//!   memory, returned by one `TimeSeriesDump` wire exchange.
//! * [`codec`] — the CRC-guarded `ropuf-metrics/v1`, `ropuf-trace/v1`
//!   and `ropuf-timeseries/v1` binary blobs that
//!   `MetricsSnapshot`/`TraceDump`/`TimeSeriesDump` wire exchanges
//!   carry; decoding is bounds-checked and never panics.
//!
//! The serving layers each own a registry (`server.*`, `verifier.*`
//! namespaces); the server merges them at scrape time, so one
//! `MetricsSnapshot` request observes the whole stack.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod metrics;
pub mod registry;
pub mod timeseries;
pub mod trace;

pub use codec::{
    crc32, MetricsDecodeError, CODEC_VERSION, METRICS_MAGIC, TIMESERIES_MAGIC, TRACE_MAGIC,
};
pub use metrics::{Counter, Gauge, TimerHistogram, STRIPES};
pub use registry::{
    HistogramSnapshot, MetricSample, MetricValue, Registry, Snapshot, MAX_LABELS, MAX_LABEL_KEY,
    MAX_LABEL_VALUE, MAX_METRICS, MAX_NAME,
};
pub use timeseries::{
    band_floor_us, latency_band, Sampler, SeriesPoint, SeriesRing, TimeSeriesSnapshot,
    LATENCY_BANDS, MAX_SERIES_POINTS, SERIES_PHASES,
};
pub use trace::{TraceRecord, TraceRing, TraceSnapshot, MAX_TRACE_RECORDS};
