//! Hand-written helper-data wire format.
//!
//! The paper (§VII-C) criticizes helper-data proposals for leaving "the
//! precise storage format, parsing procedure and/or sanity checks"
//! unspecified, because "subtle differences might impact security
//! tremendously". This module therefore pins the byte format down exactly:
//!
//! * all integers little-endian;
//! * every scheme's helper blob starts with a one-byte scheme tag and a
//!   one-byte version;
//! * variable-length fields carry explicit `u32` lengths;
//! * parsing never panics on malformed input — every anomaly is a
//!   [`WireError`].

use ropuf_numeric::BitVec;
use std::fmt;

/// Errors produced while parsing helper-data bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a field was complete.
    UnexpectedEnd {
        /// Bytes needed to finish the field.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// The scheme tag did not match the parsing scheme.
    SchemeTag {
        /// Expected tag.
        expected: u8,
        /// Found tag.
        got: u8,
    },
    /// Unsupported format version.
    Version {
        /// Found version byte.
        got: u8,
    },
    /// A length or count field is implausibly large or inconsistent.
    BadLength {
        /// Field description.
        what: &'static str,
        /// Offending value.
        value: u64,
    },
    /// Trailing bytes after a complete parse.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A semantic sanity check failed (e.g. RO index out of range).
    Semantic {
        /// Human-readable reason.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { needed, available } => {
                write!(
                    f,
                    "unexpected end of helper data: need {needed}, have {available}"
                )
            }
            WireError::SchemeTag { expected, got } => {
                write!(
                    f,
                    "helper data scheme tag mismatch: expected {expected:#04x}, got {got:#04x}"
                )
            }
            WireError::Version { got } => write!(f, "unsupported helper data version {got}"),
            WireError::BadLength { what, value } => {
                write!(f, "implausible length for {what}: {value}")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after helper data")
            }
            WireError::Semantic { what } => write!(f, "helper data sanity check failed: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum element count accepted for any repeated field — a hard cap
/// against resource-exhaustion via forged length fields.
pub const MAX_COUNT: u64 = 1 << 24;

/// Serializer for helper-data blobs.
///
/// # Examples
///
/// ```
/// use ropuf_constructions::wire::{WireReader, WireWriter};
///
/// let mut w = WireWriter::new(0xA1);
/// w.put_u16(512);
/// w.put_f64(1.5);
/// let bytes = w.into_bytes();
/// let mut r = WireReader::new(&bytes, 0xA1).unwrap();
/// assert_eq!(r.take_u16().unwrap(), 512);
/// assert_eq!(r.take_f64().unwrap(), 1.5);
/// r.finish().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

/// Current wire format version.
pub const WIRE_VERSION: u8 = 1;

impl WireWriter {
    /// Starts a blob for the given scheme tag.
    pub fn new(scheme_tag: u8) -> Self {
        Self {
            buf: vec![scheme_tag, WIRE_VERSION],
        }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed bit vector.
    pub fn put_bits(&mut self, bits: &BitVec) {
        self.put_u32(bits.len() as u32);
        self.buf.extend_from_slice(&bits.to_bytes());
    }

    /// Appends a length-prefixed list of `u16` (RO / pair indices).
    pub fn put_u16_list(&mut self, list: &[u16]) {
        self.put_u32(list.len() as u32);
        for &v in list {
            self.put_u16(v);
        }
    }

    /// Appends a length-prefixed list of `f64` (polynomial coefficients).
    pub fn put_f64_list(&mut self, list: &[f64]) {
        self.put_u32(list.len() as u32);
        for &v in list {
            self.put_f64(v);
        }
    }

    /// Finishes and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Parser for helper-data blobs.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts parsing, validating the scheme tag and version.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on short input, wrong tag or wrong version.
    pub fn new(data: &'a [u8], scheme_tag: u8) -> Result<Self, WireError> {
        let mut r = Self { data, pos: 0 };
        let tag = r.take_u8()?;
        if tag != scheme_tag {
            return Err(WireError::SchemeTag {
                expected: scheme_tag,
                got: tag,
            });
        }
        let version = r.take_u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::Version { got: version });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.data.len() {
            return Err(WireError::UnexpectedEnd {
                needed: n,
                available: self.data.len() - self.pos,
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] on short input (same for all `take_*`).
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] on short input.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] on short input.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] on short input.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64`, rejecting NaN (a NaN threshold or coefficient would
    /// poison comparisons downstream).
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] or [`WireError::Semantic`] for NaN.
    pub fn take_f64(&mut self) -> Result<f64, WireError> {
        let b = self.take(8)?;
        let v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
        if v.is_nan() {
            return Err(WireError::Semantic {
                what: "NaN floating-point field",
            });
        }
        Ok(v)
    }

    /// Reads a length-prefixed bit vector.
    ///
    /// # Errors
    ///
    /// [`WireError`] on short input or an implausible length.
    pub fn take_bits(&mut self) -> Result<BitVec, WireError> {
        let len = self.take_u32()? as u64;
        if len > MAX_COUNT {
            return Err(WireError::BadLength {
                what: "bit vector",
                value: len,
            });
        }
        let nbytes = (len as usize).div_ceil(8);
        let bytes = self.take(nbytes)?;
        Ok(BitVec::from_bytes(bytes, len as usize))
    }

    /// Reads a length-prefixed `u16` list.
    ///
    /// # Errors
    ///
    /// [`WireError`] on short input or an implausible length.
    pub fn take_u16_list(&mut self) -> Result<Vec<u16>, WireError> {
        let len = self.take_u32()? as u64;
        if len > MAX_COUNT {
            return Err(WireError::BadLength {
                what: "u16 list",
                value: len,
            });
        }
        (0..len).map(|_| self.take_u16()).collect()
    }

    /// Reads a length-prefixed `f64` list.
    ///
    /// # Errors
    ///
    /// [`WireError`] on short input or an implausible length.
    pub fn take_f64_list(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.take_u32()? as u64;
        if len > MAX_COUNT {
            return Err(WireError::BadLength {
                what: "f64 list",
                value: len,
            });
        }
        (0..len).map(|_| self.take_f64()).collect()
    }

    /// Asserts that all bytes were consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] if bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.data.len() {
            return Err(WireError::TrailingBytes {
                count: self.data.len() - self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = WireWriter::new(0x42);
        w.put_u8(7);
        w.put_u16(65535);
        w.put_u32(123456);
        w.put_u64(1 << 40);
        w.put_f64(-2.75);
        w.put_bits(&BitVec::from_bools([true, false, true]));
        w.put_u16_list(&[1, 2, 3]);
        w.put_f64_list(&[0.5, 1.5]);
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes, 0x42).unwrap();
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u16().unwrap(), 65535);
        assert_eq!(r.take_u32().unwrap(), 123456);
        assert_eq!(r.take_u64().unwrap(), 1 << 40);
        assert_eq!(r.take_f64().unwrap(), -2.75);
        assert_eq!(r.take_bits().unwrap().to_string(), "101");
        assert_eq!(r.take_u16_list().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.take_f64_list().unwrap(), vec![0.5, 1.5]);
        r.finish().unwrap();
    }

    #[test]
    fn wrong_tag_rejected() {
        let bytes = WireWriter::new(0x01).into_bytes();
        assert!(matches!(
            WireReader::new(&bytes, 0x02),
            Err(WireError::SchemeTag {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = WireWriter::new(0x01).into_bytes();
        bytes[1] = 99;
        assert!(matches!(
            WireReader::new(&bytes, 0x01),
            Err(WireError::Version { got: 99 })
        ));
    }

    #[test]
    fn truncated_input_is_error_not_panic() {
        let mut w = WireWriter::new(0x05);
        w.put_u64(1);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let r = WireReader::new(&bytes[..cut], 0x05).and_then(|mut r| r.take_u64());
            if cut < bytes.len() {
                assert!(r.is_err() || cut == bytes.len());
            }
        }
    }

    #[test]
    fn forged_giant_length_rejected() {
        let mut w = WireWriter::new(0x06);
        w.put_u32(u32::MAX); // claimed list length
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, 0x06).unwrap();
        assert!(matches!(
            r.take_u16_list(),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut w = WireWriter::new(0x07);
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, 0x07).unwrap();
        assert!(matches!(r.take_f64(), Err(WireError::Semantic { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new(0x08);
        w.put_u8(1);
        let bytes = w.into_bytes();
        let r = WireReader::new(&bytes, 0x08).unwrap();
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }
}
