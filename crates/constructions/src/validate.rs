//! Defender-side helper-data validation utilities.
//!
//! The paper's closing discussion (§VII) argues that a deployable key
//! generator must treat its public helper NVM as hostile: integrity
//! checks and query monitoring are the countermeasures separating a toy
//! from a service. This module gives the defender the two primitives it
//! needs without knowing a scheme's concrete helper type:
//!
//! * [`helper_digest`] — a SHA-256 digest of the helper blob, stored at
//!   enrollment and compared on every authentication;
//! * [`validate_helper`] — a full wire-format reparse dispatched on the
//!   scheme tag, so a structurally mangled blob is caught even when its
//!   digest was never enrolled.

use ropuf_hash::sha256;

use crate::cooperative::{CooperativeHelper, COOP_TAG};
use crate::fuzzy::{FuzzyHelper, FUZZY_TAG};
use crate::group::{GroupBasedHelper, GROUP_TAG};
use crate::pairing::distilled::{DistilledHelper, DISTILLED_TAG};
use crate::pairing::lisa::{LisaHelper, LISA_TAG};
use crate::scheme::SanityPolicy;
use crate::wire::WireError;

/// SHA-256 digest of a helper blob — the integrity reference a verifier
/// stores at enrollment and compares against the device's current NVM
/// contents on every authentication.
pub fn helper_digest(helper: &[u8]) -> [u8; 32] {
    sha256(helper)
}

/// The scheme tag byte of a helper blob, if one is present.
pub fn peek_scheme_tag(helper: &[u8]) -> Option<u8> {
    helper.first().copied()
}

/// Human-readable scheme name for a wire tag (`None` for unknown tags).
pub fn scheme_name_of_tag(tag: u8) -> Option<&'static str> {
    match tag {
        LISA_TAG => Some("lisa"),
        COOP_TAG => Some("cooperative"),
        GROUP_TAG => Some("group-based"),
        DISTILLED_TAG => Some("distiller-pairing"),
        FUZZY_TAG => Some("fuzzy"),
        _ => None,
    }
}

/// Reparses `helper` as the wire format identified by `tag`, without
/// constructing a device or reconstructing a key.
///
/// This is the verifier-side "wire-format reparse" integrity signal: a
/// blob that no longer parses for its enrolled scheme is manipulated
/// regardless of what it hashes to. `sanity` selects how much semantic
/// re-validation the formats that support it perform (the group-based
/// and distiller formats validate structurally only, like the devices
/// themselves do).
///
/// # Errors
///
/// Returns the scheme's own [`WireError`] for malformed bytes, or
/// [`WireError::SchemeTag`] when `tag` is not a known scheme.
pub fn validate_helper(tag: u8, helper: &[u8], sanity: SanityPolicy) -> Result<(), WireError> {
    match tag {
        LISA_TAG => LisaHelper::from_bytes(helper, sanity).map(|_| ()),
        COOP_TAG => CooperativeHelper::from_bytes(helper, sanity).map(|_| ()),
        GROUP_TAG => GroupBasedHelper::from_bytes(helper).map(|_| ()),
        DISTILLED_TAG => DistilledHelper::from_bytes(helper).map(|_| ()),
        FUZZY_TAG => FuzzyHelper::from_bytes(helper).map(|_| ()),
        other => Err(WireError::SchemeTag {
            expected: other,
            got: peek_scheme_tag(helper).unwrap_or(0),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::lisa::{LisaConfig, LisaScheme};
    use crate::HelperDataScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn lisa_helper() -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(11);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        LisaScheme::new(LisaConfig::default())
            .enroll(&array, &mut rng)
            .unwrap()
            .helper
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let helper = lisa_helper();
        assert_eq!(helper_digest(&helper), helper_digest(&helper));
        let mut tampered = helper.clone();
        tampered[4] ^= 1;
        assert_ne!(helper_digest(&helper), helper_digest(&tampered));
    }

    #[test]
    fn genuine_helper_validates() {
        let helper = lisa_helper();
        assert_eq!(peek_scheme_tag(&helper), Some(LISA_TAG));
        assert_eq!(scheme_name_of_tag(LISA_TAG), Some("lisa"));
        validate_helper(LISA_TAG, &helper, SanityPolicy::Lenient).unwrap();
    }

    #[test]
    fn truncated_helper_fails_reparse() {
        let helper = lisa_helper();
        let cut = &helper[..helper.len() / 2];
        assert!(validate_helper(LISA_TAG, cut, SanityPolicy::Lenient).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(scheme_name_of_tag(0x00), None);
        assert!(validate_helper(0x00, &[0x00, 1], SanityPolicy::Lenient).is_err());
    }

    #[test]
    fn wrong_scheme_tag_rejected() {
        let helper = lisa_helper();
        assert!(matches!(
            validate_helper(GROUP_TAG, &helper, SanityPolicy::Lenient),
            Err(WireError::SchemeTag { .. })
        ));
    }
}
