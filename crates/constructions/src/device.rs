//! The black-box device oracle — the attacker's view of a provisioned
//! PUF device.
//!
//! Per the paper's attacker model (Section VI, Figs. 4 and 7):
//!
//! * the attacker has **read and write access to helper NVM**
//!   ([`Device::helper`], [`Device::write_helper`]) — §VII-B argues helper
//!   data must always be considered public and writable;
//! * the attacker observes only **key-dependent application behavior**.
//!   [`Device::respond`] models the weakest such observable: an
//!   HMAC-SHA256 tag over an attacker-chosen nonce under the freshly
//!   reconstructed key, or an error indication when reconstruction fails.
//!   "An inability to reconstruct the key should affect the observable
//!   behavior of any useful application."

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_hash::hmac_sha256;
use ropuf_numeric::BitVec;
use ropuf_sim::{Environment, RoArray};

use crate::scheme::{EnrollError, HelperDataScheme, ReconstructError};

/// Outcome of one device query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceResponse {
    /// Application output under the reconstructed key.
    Tag([u8; 32]),
    /// Key reconstruction failed observably (ECC failure, helper data
    /// rejected, manipulation detected, …).
    Failure,
}

impl DeviceResponse {
    /// `true` for [`DeviceResponse::Failure`].
    pub fn is_failure(&self) -> bool {
        matches!(self, DeviceResponse::Failure)
    }
}

/// A provisioned device: secret RO array + scheme firmware + public
/// helper NVM.
///
/// # Examples
///
/// ```
/// use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme};
/// use ropuf_constructions::Device;
/// use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
/// let mut device = Device::provision(
///     array,
///     Box::new(LisaScheme::new(LisaConfig::default())),
///     42,
/// ).unwrap();
/// let r = device.respond(b"nonce", Environment::nominal());
/// assert!(!r.is_failure());
/// ```
#[derive(Debug)]
pub struct Device {
    array: RoArray,
    scheme: Box<dyn HelperDataScheme>,
    helper: Vec<u8>,
    enrolled_key: BitVec,
    rng: StdRng,
    queries: u64,
    /// Reused full-array measurement buffer: every query reconstructs
    /// the key from a fresh frequency sweep, and this keeps that sweep
    /// from allocating after the first query.
    measure_scratch: Vec<f64>,
}

impl Device {
    /// Manufactures + enrolls a device.
    ///
    /// # Errors
    ///
    /// Propagates [`EnrollError`] from the scheme.
    pub fn provision(
        array: RoArray,
        scheme: Box<dyn HelperDataScheme>,
        seed: u64,
    ) -> Result<Self, EnrollError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let enrollment = scheme.enroll(&array, &mut rng)?;
        Ok(Self {
            array,
            scheme,
            helper: enrollment.helper,
            enrolled_key: enrollment.key,
            rng,
            queries: 0,
            measure_scratch: Vec::new(),
        })
    }

    /// Public helper NVM (attacker-readable).
    pub fn helper(&self) -> &[u8] {
        &self.helper
    }

    /// Overwrites helper NVM (attacker-writable).
    pub fn write_helper(&mut self, bytes: impl Into<Vec<u8>>) {
        self.helper = bytes.into();
    }

    /// Overwrites helper NVM from a slice, reusing the NVM buffer's
    /// capacity — the attack hot paths rewrite the helper before every
    /// probe, and this keeps that rewrite allocation-free.
    pub fn set_helper(&mut self, bytes: &[u8]) {
        self.helper.clear();
        self.helper.extend_from_slice(bytes);
    }

    /// One application query: reconstruct the key from current helper NVM
    /// at the given operating point and answer with an HMAC tag over the
    /// nonce; failures are observable.
    pub fn respond(&mut self, nonce: &[u8], env: Environment) -> DeviceResponse {
        self.queries += 1;
        match self.scheme.reconstruct_with_scratch(
            &self.array,
            &self.helper,
            env,
            &mut self.rng,
            &mut self.measure_scratch,
        ) {
            Ok(key) => DeviceResponse::Tag(hmac_sha256(&key.to_bytes(), nonce)),
            Err(_) => DeviceResponse::Failure,
        }
    }

    /// Total queries served (diagnostic; the attacks report their query
    /// complexity from the attacker side as well).
    pub fn query_count(&self) -> u64 {
        self.queries
    }

    /// The scheme name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// Ground-truth enrolled key. **Test/analysis access only** — the
    /// attacks never call this; it exists so experiments can verify that
    /// a recovered key is correct.
    pub fn enrolled_key(&self) -> &BitVec {
        &self.enrolled_key
    }

    /// Ground-truth array access for analysis/figures (never used by the
    /// attacks).
    pub fn array(&self) -> &RoArray {
        &self.array
    }

    /// Diagnostic reconstruction that surfaces the precise error.
    ///
    /// # Errors
    ///
    /// Propagates [`ReconstructError`].
    pub fn reconstruct_key(&mut self, env: Environment) -> Result<BitVec, ReconstructError> {
        self.queries += 1;
        self.scheme.reconstruct_with_scratch(
            &self.array,
            &self.helper,
            env,
            &mut self.rng,
            &mut self.measure_scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{GroupBasedConfig, GroupBasedScheme};
    use crate::pairing::lisa::{LisaConfig, LisaScheme};
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn provision_lisa(seed: u64) -> Device {
        let mut rng = StdRng::seed_from_u64(seed);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        Device::provision(
            array,
            Box::new(LisaScheme::new(LisaConfig::default())),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn genuine_helper_yields_stable_tag() {
        let mut d = provision_lisa(1);
        let t1 = d.respond(b"n", Environment::nominal());
        let t2 = d.respond(b"n", Environment::nominal());
        assert_eq!(t1, t2, "same nonce, same key ⇒ same tag");
        assert!(!t1.is_failure());
    }

    #[test]
    fn different_nonces_different_tags() {
        let mut d = provision_lisa(2);
        let t1 = d.respond(b"a", Environment::nominal());
        let t2 = d.respond(b"b", Environment::nominal());
        assert_ne!(t1, t2);
    }

    #[test]
    fn garbage_helper_fails_observably() {
        let mut d = provision_lisa(3);
        d.write_helper(vec![0xFFu8; 10]);
        assert!(d.respond(b"n", Environment::nominal()).is_failure());
    }

    #[test]
    fn helper_restore_recovers_function() {
        let mut d = provision_lisa(4);
        let original = d.helper().to_vec();
        let good = d.respond(b"n", Environment::nominal());
        d.write_helper(vec![0u8; 4]);
        assert!(d.respond(b"n", Environment::nominal()).is_failure());
        d.write_helper(original);
        assert_eq!(d.respond(b"n", Environment::nominal()), good);
    }

    #[test]
    fn query_counter_increments() {
        let mut d = provision_lisa(5);
        assert_eq!(d.query_count(), 0);
        d.respond(b"x", Environment::nominal());
        d.respond(b"y", Environment::nominal());
        assert_eq!(d.query_count(), 2);
    }

    #[test]
    fn group_based_device_works() {
        let mut rng = StdRng::seed_from_u64(6);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        let mut d = Device::provision(
            array,
            Box::new(GroupBasedScheme::new(GroupBasedConfig::default())),
            7,
        )
        .unwrap();
        assert_eq!(d.scheme_name(), "group-based");
        assert!(!d.respond(b"n", Environment::nominal()).is_failure());
    }
}
