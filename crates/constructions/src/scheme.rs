//! The common interface of helper-data key-generation schemes.

use rand::RngCore;
use ropuf_numeric::BitVec;
use ropuf_sim::{Environment, RoArray};
use std::fmt;

use crate::wire::WireError;

/// Result of a one-time post-manufacturing enrollment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Enrollment {
    /// The derived secret key.
    pub key: BitVec,
    /// Byte-encoded public helper data (stored in off-chip NVM; the
    /// attacker has read **and write** access, paper §VII-B).
    pub helper: Vec<u8>,
}

/// Errors during enrollment.
#[derive(Debug, Clone, PartialEq)]
pub enum EnrollError {
    /// The array yields too few usable response bits for the configured
    /// parameters.
    InsufficientEntropy {
        /// Bits obtained.
        got: usize,
        /// Bits required.
        needed: usize,
    },
    /// The entropy-distiller regression failed (rank-deficient sample set).
    Distiller(String),
    /// No ECC with the requested parameters exists.
    Ecc(String),
}

impl fmt::Display for EnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnrollError::InsufficientEntropy { got, needed } => {
                write!(f, "insufficient response bits: got {got}, need {needed}")
            }
            EnrollError::Distiller(s) => write!(f, "entropy distiller failed: {s}"),
            EnrollError::Ecc(s) => write!(f, "ECC construction failed: {s}"),
        }
    }
}

impl std::error::Error for EnrollError {}

/// Errors during key reconstruction — the attacker-observable event space.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconstructError {
    /// Helper data failed to parse or a sanity check rejected it.
    Helper(WireError),
    /// The ECC could not correct the response (too many errors).
    EccFailure,
    /// Error-corrected bits decode to an inconsistent (non-transitive)
    /// frequency order.
    InconsistentOrder,
    /// The operating point lies outside the construction's supported
    /// range.
    OutOfRange {
        /// Requested temperature in °C.
        temperature_c: f64,
    },
    /// The robust fuzzy extractor detected helper-data manipulation.
    ManipulationDetected,
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::Helper(e) => write!(f, "helper data rejected: {e}"),
            ReconstructError::EccFailure => write!(f, "error correction failed"),
            ReconstructError::InconsistentOrder => {
                write!(f, "corrected bits encode an inconsistent frequency order")
            }
            ReconstructError::OutOfRange { temperature_c } => {
                write!(
                    f,
                    "operating point {temperature_c} °C outside supported range"
                )
            }
            ReconstructError::ManipulationDetected => {
                write!(f, "helper data manipulation detected")
            }
        }
    }
}

impl std::error::Error for ReconstructError {}

impl From<WireError> for ReconstructError {
    fn from(e: WireError) -> Self {
        ReconstructError::Helper(e)
    }
}

/// How strictly a device re-validates parsed helper data.
///
/// The paper (§VII-C) observes that proposals rarely specify sanity
/// checks, although "subtle differences might impact security
/// tremendously". Both policies parse the wire format fully; [`Strict`]
/// additionally re-validates semantic invariants (index ranges, duplicate
/// RO use, threshold properties) where the construction allows it.
///
/// [`Strict`]: SanityPolicy::Strict
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanityPolicy {
    /// Structural parsing only — what a minimal implementation would do.
    /// This is the (realistic) default and the setting under which all
    /// paper attacks are demonstrated.
    #[default]
    Lenient,
    /// Re-validate semantic invariants. Blocks *some* manipulations (e.g.
    /// RO re-use across LISA pairs) but, as the paper argues, not the
    /// attacks themselves.
    Strict,
}

/// A helper-data key-generation scheme.
///
/// Implementations are deterministic given the RNG; all PUF noise comes
/// from the [`RoArray`] measurement model.
pub trait HelperDataScheme: fmt::Debug {
    /// Short human-readable name ("lisa", "group-based", …).
    fn name(&self) -> &'static str;

    /// Boxed clone of the scheme firmware.
    ///
    /// Schemes carry only configuration (no per-device state), so this
    /// is cheap; it lets campaign fleets re-provision many devices from
    /// a single scheme template without threading concrete types
    /// through. Also available as `Clone` on `Box<dyn HelperDataScheme>`.
    fn clone_box(&self) -> Box<dyn HelperDataScheme>;

    /// One-time enrollment: measures the array (enrollment-grade
    /// averaging), derives the key and emits public helper data.
    ///
    /// # Errors
    ///
    /// Returns [`EnrollError`] when the array cannot support the configured
    /// parameters.
    fn enroll(&self, array: &RoArray, rng: &mut dyn RngCore) -> Result<Enrollment, EnrollError>;

    /// Key reconstruction from (possibly attacker-modified) helper bytes
    /// at the given operating point.
    ///
    /// # Errors
    ///
    /// Returns [`ReconstructError`] when helper data is rejected or error
    /// correction fails — the externally observable failure event.
    fn reconstruct(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
    ) -> Result<BitVec, ReconstructError>;

    /// [`HelperDataScheme::reconstruct`] with a caller-owned frequency
    /// scratch buffer, so hot loops (oracle probes, campaign sweeps)
    /// stop allocating one `Vec<f64>` per full-array measurement.
    ///
    /// The two entry points are interchangeable bit-for-bit: same RNG
    /// consumption, same key, same errors. The default ignores the
    /// scratch; schemes whose reconstruction measures the whole array
    /// override it.
    ///
    /// # Errors
    ///
    /// Identical to [`HelperDataScheme::reconstruct`].
    fn reconstruct_with_scratch(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
        scratch: &mut Vec<f64>,
    ) -> Result<BitVec, ReconstructError> {
        let _ = scratch;
        self.reconstruct(array, helper, env, rng)
    }
}

impl Clone for Box<dyn HelperDataScheme> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_displays() {
        let e = EnrollError::InsufficientEntropy { got: 3, needed: 8 };
        assert!(e.to_string().contains("got 3"));
        let r = ReconstructError::EccFailure;
        assert_eq!(r.to_string(), "error correction failed");
        let w: ReconstructError = WireError::TrailingBytes { count: 2 }.into();
        assert!(w.to_string().contains("trailing"));
    }

    #[test]
    fn sanity_policy_default_is_lenient() {
        assert_eq!(SanityPolicy::default(), SanityPolicy::Lenient);
    }
}
