//! Temperature-aware cooperative RO PUF (paper Section IV-D, Fig. 3;
//! originally HOST 2009).
//!
//! Disjoint neighbor pairs operate within a user range `[Tmin, Tmax]`;
//! RO frequencies are linear in temperature, so the pair discrepancy
//! `Δf(T)` is a line. Pairs are classified (Fig. 3):
//!
//! * **good** — `|Δf(T)| > Δf_th` across the whole range: one reliable bit;
//! * **bad** — `|Δf(T)| ≤ Δf_th` across the whole range: discarded;
//! * **cooperating** — reliable except inside a crossover interval
//!   `[Tl, Th]`, which is stored as public helper data. Inside the
//!   interval the bit is reconstructed *cooperatively*: a good pair `g`
//!   masks the bit and an assisting cooperating pair `a` with a
//!   non-intersecting interval supplies it via `r_c = r_g ⊕ r_a`
//!   (the enrollment constraint `r_c ⊕ r_g = r_a`). Outside the interval
//!   the bit is measured directly and inverted for `T > Th`.
//!
//! The paper notes a leakage hazard in the *selection* of the assisting
//! pair: if the enrollment procedure scans candidates deterministically
//! until the masking constraint is met, every skipped candidate `j`
//! reveals `r_cj ≠ r_ci`. Both policies are implemented
//! ([`AssistSelection`]).

use rand::{Rng, RngCore};
use ropuf_numeric::BitVec;
use ropuf_sim::env::TemperatureRange;
use ropuf_sim::{Environment, RoArray};

use crate::ecc_helper::ParityHelper;
use crate::pairing::neighbor::{disjoint_chain_pairs, RoPair};
use crate::scheme::{EnrollError, Enrollment, HelperDataScheme, ReconstructError, SanityPolicy};
use crate::wire::{WireError, WireReader, WireWriter};

/// Wire-format scheme tag for temperature-aware cooperative helper data.
pub const COOP_TAG: u8 = 0x54; // 'T'

/// How the assisting pair is selected among feasible candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssistSelection {
    /// Uniformly random among feasible `(assist, mask)` combinations —
    /// the paper's recommendation.
    #[default]
    Random,
    /// First feasible combination in index order. The paper's warning:
    /// skipped candidates leak `r_cj ≠ r_ci`.
    DeterministicScan,
}

/// Linear discrepancy model of one pair: `Δf(T) = offset + slope·T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaLine {
    /// Δf at T = 0 °C, in Hz.
    pub offset: f64,
    /// Slope in Hz/°C.
    pub slope: f64,
}

impl DeltaLine {
    /// Δf at temperature `t`.
    pub fn at(&self, t: f64) -> f64 {
        self.offset + self.slope * t
    }

    /// Fits the line through measurements at the two range extremes.
    pub fn from_extremes(range: TemperatureRange, delta_min_t: f64, delta_max_t: f64) -> Self {
        let slope = (delta_max_t - delta_min_t) / range.width().max(f64::MIN_POSITIVE);
        let offset = delta_min_t - slope * range.min_c;
        Self { offset, slope }
    }
}

/// Classification of one RO pair (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairClass {
    /// Reliable across the whole range; carries its response bit.
    Good {
        /// Response bit (`Δf > 0` throughout the range).
        bit: bool,
    },
    /// Unreliable across the whole range; discarded.
    Bad,
    /// Reliable except inside `[tl, th]`.
    Cooperating {
        /// Lower crossover bound (°C).
        tl: f64,
        /// Upper crossover bound (°C).
        th: f64,
        /// Reference bit: sign of Δf below `tl` (or the inverted sign
        /// above `th` when the interval touches the range bottom).
        bit: bool,
    },
}

/// Classifies a pair from its discrepancy line (paper Fig. 3).
///
/// A pair is **cooperating** only when `Δf(T)` actually *crosses zero*
/// inside the operating range — the defining feature of Fig. 3's third
/// class, and the precondition of the `T > Th ⇒ invert` reconstruction
/// rule. A pair whose `|Δf|` merely dips into the threshold band without
/// changing sign keeps a constant response bit and is classified good
/// (its error rate is briefly elevated inside the band; the ECC absorbs
/// that).
pub fn classify_pair(line: DeltaLine, range: TemperatureRange, delta_f_th: f64) -> PairClass {
    let (d_lo, d_hi) = (line.at(range.min_c), line.at(range.max_c));
    if d_lo.abs() <= delta_f_th && d_hi.abs() <= delta_f_th {
        return PairClass::Bad;
    }
    if (d_lo > 0.0) == (d_hi > 0.0) {
        // Sign constant across the range (possibly dipping into the band).
        return PairClass::Good { bit: d_lo > 0.0 };
    }
    // Sign change ⇒ a genuine crossover; |Δf(T)| ≤ th between the
    // solutions of Δf = ±th (slope is non-zero here).
    let t_a = (-delta_f_th - line.offset) / line.slope;
    let t_b = (delta_f_th - line.offset) / line.slope;
    let (lo, hi) = if t_a <= t_b { (t_a, t_b) } else { (t_b, t_a) };
    let tl = lo.max(range.min_c);
    let th = hi.min(range.max_c);
    // Reference bit: sign below the interval, or inverted sign above when
    // the interval touches the bottom of the range. With a sign change
    // inside the range the two conventions agree.
    let bit = if tl > range.min_c {
        d_lo > 0.0
    } else {
        !(d_hi > 0.0)
    };
    PairClass::Cooperating { tl, th, bit }
}

/// Configuration of the [`CooperativeScheme`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CooperativeConfig {
    /// Operating temperature range.
    pub range: TemperatureRange,
    /// Frequency discrepancy threshold in Hz.
    pub delta_f_th: f64,
    /// Averaged measurements per RO per extreme at enrollment.
    pub enroll_avg: usize,
    /// Per-block ECC correction capability.
    pub ecc_t: usize,
    /// Assist-selection policy.
    pub selection: AssistSelection,
    /// Helper-data parsing strictness.
    pub sanity: SanityPolicy,
}

impl Default for CooperativeConfig {
    fn default() -> Self {
        Self {
            range: TemperatureRange::commercial(),
            delta_f_th: 40.0e3,
            enroll_avg: 16,
            ecc_t: 3,
            selection: AssistSelection::Random,
            sanity: SanityPolicy::Lenient,
        }
    }
}

/// Per-pair helper entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairEntry {
    /// Good pair: contributes one direct bit.
    Good,
    /// Bad pair: discarded.
    Bad,
    /// Cooperating pair contributing a bit, with crossover interval and
    /// cooperation links (indices into the pair list).
    Coop {
        /// Lower crossover bound (°C).
        tl: f64,
        /// Upper crossover bound (°C).
        th: f64,
        /// Index of the assisting (donor) pair.
        assist: u16,
        /// Index of the masking good pair.
        mask: u16,
    },
    /// Cooperating pair without a feasible assist: discarded from the key
    /// but still usable as a donor (its interval is retained).
    CoopDiscarded {
        /// Lower crossover bound (°C).
        tl: f64,
        /// Upper crossover bound (°C).
        th: f64,
    },
}

/// Parsed cooperative helper data.
#[derive(Debug, Clone, PartialEq)]
pub struct CooperativeHelper {
    /// Number of ROs the helper was generated for.
    pub array_len: u16,
    /// Operating range bottom (°C).
    pub t_min: f64,
    /// Operating range top (°C).
    pub t_max: f64,
    /// One entry per disjoint neighbor pair.
    pub entries: Vec<PairEntry>,
    /// ECC redundancy over the key bits.
    pub parity: BitVec,
}

impl CooperativeHelper {
    /// Serializes to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new(COOP_TAG);
        w.put_u16(self.array_len);
        w.put_f64(self.t_min);
        w.put_f64(self.t_max);
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            match *e {
                PairEntry::Good => w.put_u8(0),
                PairEntry::Bad => w.put_u8(1),
                PairEntry::Coop {
                    tl,
                    th,
                    assist,
                    mask,
                } => {
                    w.put_u8(2);
                    w.put_f64(tl);
                    w.put_f64(th);
                    w.put_u16(assist);
                    w.put_u16(mask);
                }
                PairEntry::CoopDiscarded { tl, th } => {
                    w.put_u8(3);
                    w.put_f64(tl);
                    w.put_f64(th);
                }
            }
        }
        w.put_bits(&self.parity);
        w.into_bytes()
    }

    /// Parses from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input; under
    /// [`SanityPolicy::Strict`] additionally when a cooperation link
    /// points at a pair of the wrong class or at the pair itself.
    pub fn from_bytes(bytes: &[u8], sanity: SanityPolicy) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes, COOP_TAG)?;
        let array_len = r.take_u16()?;
        let t_min = r.take_f64()?;
        let t_max = r.take_f64()?;
        if t_min >= t_max {
            return Err(WireError::Semantic {
                what: "inverted temperature range",
            });
        }
        let count = r.take_u32()? as u64;
        if count > crate::wire::MAX_COUNT {
            return Err(WireError::BadLength {
                what: "pair entries",
                value: count,
            });
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let entry = match r.take_u8()? {
                0 => PairEntry::Good,
                1 => PairEntry::Bad,
                2 => {
                    let tl = r.take_f64()?;
                    let th = r.take_f64()?;
                    let assist = r.take_u16()?;
                    let mask = r.take_u16()?;
                    if tl > th {
                        return Err(WireError::Semantic {
                            what: "inverted crossover interval",
                        });
                    }
                    PairEntry::Coop {
                        tl,
                        th,
                        assist,
                        mask,
                    }
                }
                3 => {
                    let tl = r.take_f64()?;
                    let th = r.take_f64()?;
                    if tl > th {
                        return Err(WireError::Semantic {
                            what: "inverted crossover interval",
                        });
                    }
                    PairEntry::CoopDiscarded { tl, th }
                }
                _ => {
                    return Err(WireError::Semantic {
                        what: "unknown pair class",
                    })
                }
            };
            entries.push(entry);
        }
        // Link targets must exist (structural, both policies).
        for (i, e) in entries.iter().enumerate() {
            if let PairEntry::Coop { assist, mask, .. } = *e {
                if assist as usize >= entries.len() || mask as usize >= entries.len() {
                    return Err(WireError::Semantic {
                        what: "cooperation link out of range",
                    });
                }
                if sanity == SanityPolicy::Strict {
                    if assist as usize == i {
                        return Err(WireError::Semantic {
                            what: "pair assists itself",
                        });
                    }
                    if !matches!(
                        entries[assist as usize],
                        PairEntry::Coop { .. } | PairEntry::CoopDiscarded { .. }
                    ) {
                        return Err(WireError::Semantic {
                            what: "assist link targets a non-cooperating pair",
                        });
                    }
                    if !matches!(entries[mask as usize], PairEntry::Good) {
                        return Err(WireError::Semantic {
                            what: "mask link targets a non-good pair",
                        });
                    }
                }
            }
        }
        let parity = r.take_bits()?;
        r.finish()?;
        Ok(Self {
            array_len,
            t_min,
            t_max,
            entries,
            parity,
        })
    }
}

/// The temperature-aware cooperative key generator.
#[derive(Debug, Clone)]
pub struct CooperativeScheme {
    config: CooperativeConfig,
}

/// Enrollment-time transcript of the assist selection — records the
/// candidates that a deterministic scan *skipped*, i.e. exactly the
/// relations the paper says leak (`r_cj ≠ r_ci`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectionTranscript {
    /// Per cooperating pair: `(pair, skipped_candidates, chosen)`.
    pub scans: Vec<(u16, Vec<u16>, u16)>,
}

impl CooperativeScheme {
    /// Creates the scheme.
    pub fn new(config: CooperativeConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CooperativeConfig {
        &self.config
    }

    /// The fixed disjoint neighbor pair list for an array.
    pub fn pairs(array: &RoArray) -> Vec<RoPair> {
        disjoint_chain_pairs(array.dims())
    }

    /// Measures the discrepancy lines of all pairs at the range extremes
    /// (the original proposal requires measurements at two environmental
    /// extremes).
    pub fn measure_lines(
        &self,
        array: &RoArray,
        rng: &mut dyn RngCore,
    ) -> Vec<(RoPair, DeltaLine)> {
        let range = self.config.range;
        let lo = Environment::at_temperature(range.min_c);
        let hi = Environment::at_temperature(range.max_c);
        let f_lo = array.measure_all_averaged(lo, self.config.enroll_avg, rng);
        let f_hi = array.measure_all_averaged(hi, self.config.enroll_avg, rng);
        Self::pairs(array)
            .into_iter()
            .map(|(a, b)| {
                let line = DeltaLine::from_extremes(range, f_lo[a] - f_lo[b], f_hi[a] - f_hi[b]);
                ((a, b), line)
            })
            .collect()
    }

    /// Enrollment with a full selection transcript (used to demonstrate
    /// the deterministic-scan leakage).
    ///
    /// # Errors
    ///
    /// Returns [`EnrollError`] when too few usable bits result.
    pub fn enroll_with_transcript(
        &self,
        array: &RoArray,
        rng: &mut dyn RngCore,
    ) -> Result<(Enrollment, SelectionTranscript), EnrollError> {
        let lines = self.measure_lines(array, rng);
        let classes: Vec<PairClass> = lines
            .iter()
            .map(|&(_, line)| classify_pair(line, self.config.range, self.config.delta_f_th))
            .collect();

        // Collect good bits and cooperating candidates.
        let good_bits: Vec<(usize, bool)> = classes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match *c {
                PairClass::Good { bit } => Some((i, bit)),
                _ => None,
            })
            .collect();
        let coops: Vec<(usize, f64, f64, bool)> = classes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match *c {
                PairClass::Cooperating { tl, th, bit } => Some((i, tl, th, bit)),
                _ => None,
            })
            .collect();

        let mut transcript = SelectionTranscript::default();
        let mut entries: Vec<PairEntry> = classes
            .iter()
            .map(|c| match *c {
                PairClass::Good { .. } => PairEntry::Good,
                PairClass::Bad => PairEntry::Bad,
                PairClass::Cooperating { tl, th, .. } => PairEntry::CoopDiscarded { tl, th },
            })
            .collect();

        let mut coop_bits: Vec<(usize, bool)> = Vec::new();
        for &(i, tl, th, bit) in &coops {
            // Feasible donors: cooperating pairs with non-intersecting
            // crossover interval whose bit satisfies r_c ⊕ r_g = r_a for
            // some good pair g.
            let donors: Vec<(usize, bool)> = coops
                .iter()
                .filter(|&&(j, jtl, jth, _)| j != i && (jth < tl || jtl > th))
                .map(|&(j, _, _, jbit)| (j, jbit))
                .collect();
            let mut feasible: Vec<(u16, u16)> = Vec::new();
            let mut skipped: Vec<u16> = Vec::new();
            for &(j, jbit) in &donors {
                // Need a good pair g with bit ⊕ g = jbit  ⇔  g = bit ⊕ jbit.
                let want_mask = bit ^ jbit;
                if let Some(&(g, _)) = good_bits.iter().find(|&&(_, gbit)| gbit == want_mask) {
                    feasible.push((j as u16, g as u16));
                } else {
                    skipped.push(j as u16);
                }
            }
            if feasible.is_empty() {
                continue; // stays CoopDiscarded
            }
            let chosen = match self.config.selection {
                AssistSelection::Random => feasible[rng.random_range(0..feasible.len())],
                AssistSelection::DeterministicScan => {
                    // Scan donors in index order; the paper's leak: every
                    // donor whose bit fails the constraint *for the scanned
                    // mask* is skipped, revealing r_cj ≠ r_ci. With a fixed
                    // first mask pair, skipped = donors with jbit != r_c⊕g0.
                    let (g0, g0bit) = good_bits[0];
                    let want = bit ^ g0bit;
                    let mut pick = None;
                    let mut local_skipped = Vec::new();
                    for &(j, jbit) in &donors {
                        if jbit == want {
                            pick = Some((j as u16, g0 as u16));
                            break;
                        }
                        local_skipped.push(j as u16);
                    }
                    match pick {
                        Some(p) => {
                            transcript.scans.push((i as u16, local_skipped, p.0));
                            p
                        }
                        None => feasible[0],
                    }
                }
            };
            entries[i] = PairEntry::Coop {
                tl,
                th,
                assist: chosen.0,
                mask: chosen.1,
            };
            coop_bits.push((i, bit));
        }

        let mut key = BitVec::new();
        for &(_, bit) in &good_bits {
            key.push(bit);
        }
        for &(_, bit) in &coop_bits {
            key.push(bit);
        }
        if key.len() < 2 {
            return Err(EnrollError::InsufficientEntropy {
                got: key.len(),
                needed: 2,
            });
        }
        let ecc = ParityHelper::new(key.len(), self.config.ecc_t).map_err(EnrollError::Ecc)?;
        let parity = ecc.parity(&key);
        let helper = CooperativeHelper {
            array_len: array.len() as u16,
            t_min: self.config.range.min_c,
            t_max: self.config.range.max_c,
            entries,
            parity,
        };
        Ok((
            Enrollment {
                key,
                helper: helper.to_bytes(),
            },
            transcript,
        ))
    }

    /// Computes the raw (pre-ECC) response bits for parsed helper data at
    /// an operating point, measuring the array once per RO involved.
    fn raw_bits(
        &self,
        array: &RoArray,
        parsed: &CooperativeHelper,
        env: Environment,
        rng: &mut dyn RngCore,
        scratch: &mut Vec<f64>,
    ) -> Result<BitVec, ReconstructError> {
        let pairs = Self::pairs(array);
        if parsed.entries.len() != pairs.len() {
            return Err(WireError::Semantic {
                what: "pair entry count mismatch",
            }
            .into());
        }
        let t = env.temperature_c;
        // One measurement per RO, shared across direct and donor uses.
        array.measure_all_into(env, rng, scratch);
        let freqs: &[f64] = scratch;
        let sign = |idx: usize| -> bool {
            let (a, b) = pairs[idx];
            freqs[a] > freqs[b]
        };
        // Direct bit of a pair given its interval (donor rule).
        let direct = |idx: usize, _tl: f64, th: f64| -> bool {
            if t > th {
                !sign(idx)
            } else {
                sign(idx)
            }
        };
        let mut good_bits = Vec::new();
        let mut coop_bits = Vec::new();
        for (i, e) in parsed.entries.iter().enumerate() {
            match *e {
                PairEntry::Good => good_bits.push(sign(i)),
                PairEntry::Bad | PairEntry::CoopDiscarded { .. } => {}
                PairEntry::Coop {
                    tl,
                    th,
                    assist,
                    mask,
                } => {
                    let bit = if t < tl || t > th {
                        direct(i, tl, th)
                    } else {
                        // Inside the crossover interval: cooperate.
                        let donor_bit = match parsed.entries[assist as usize] {
                            PairEntry::Coop {
                                tl: dtl, th: dth, ..
                            }
                            | PairEntry::CoopDiscarded { tl: dtl, th: dth } => {
                                direct(assist as usize, dtl, dth)
                            }
                            // Lenient fallback: treat any other class as a
                            // direct comparison.
                            _ => sign(assist as usize),
                        };
                        let mask_bit = sign(mask as usize);
                        mask_bit ^ donor_bit
                    };
                    coop_bits.push(bit);
                }
            }
        }
        let mut bits = BitVec::new();
        bits.extend(good_bits);
        bits.extend(coop_bits);
        Ok(bits)
    }
}

impl HelperDataScheme for CooperativeScheme {
    fn name(&self) -> &'static str {
        "temperature-aware-cooperative"
    }

    fn clone_box(&self) -> Box<dyn HelperDataScheme> {
        Box::new(self.clone())
    }

    fn enroll(&self, array: &RoArray, rng: &mut dyn RngCore) -> Result<Enrollment, EnrollError> {
        self.enroll_with_transcript(array, rng).map(|(e, _)| e)
    }

    fn reconstruct(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
    ) -> Result<BitVec, ReconstructError> {
        self.reconstruct_with_scratch(array, helper, env, rng, &mut Vec::new())
    }

    fn reconstruct_with_scratch(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
        scratch: &mut Vec<f64>,
    ) -> Result<BitVec, ReconstructError> {
        let parsed = CooperativeHelper::from_bytes(helper, self.config.sanity)?;
        if parsed.array_len as usize != array.len() {
            return Err(WireError::Semantic {
                what: "array length mismatch",
            }
            .into());
        }
        if !(parsed.t_min..=parsed.t_max).contains(&env.temperature_c) {
            return Err(ReconstructError::OutOfRange {
                temperature_c: env.temperature_c,
            });
        }
        let bits = self.raw_bits(array, &parsed, env, rng, scratch)?;
        if bits.is_empty() {
            return Err(ReconstructError::EccFailure);
        }
        let ecc = ParityHelper::new(bits.len(), self.config.ecc_t)
            .map_err(|_| ReconstructError::EccFailure)?;
        ecc.correct(&bits, &parsed.parity)
            .map_err(|_| ReconstructError::EccFailure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn array(seed: u64) -> RoArray {
        let mut rng = StdRng::seed_from_u64(seed);
        RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng)
    }

    #[test]
    fn classify_good_bad_cooperating() {
        let range = TemperatureRange::new(0.0, 70.0);
        let th = 10.0;
        // Always far above threshold.
        let good = classify_pair(
            DeltaLine {
                offset: 100.0,
                slope: 0.1,
            },
            range,
            th,
        );
        assert_eq!(good, PairClass::Good { bit: true });
        // Always inside threshold band.
        let bad = classify_pair(
            DeltaLine {
                offset: 1.0,
                slope: 0.0,
            },
            range,
            th,
        );
        assert_eq!(bad, PairClass::Bad);
        // Crosses zero mid-range: Δf(T) = 100 − 4T ⇒ |Δf| ≤ 10 for
        // T ∈ [22.5, 27.5].
        let coop = classify_pair(
            DeltaLine {
                offset: 100.0,
                slope: -4.0,
            },
            range,
            th,
        );
        match coop {
            PairClass::Cooperating { tl, th, bit } => {
                assert!((tl - 22.5).abs() < 1e-9);
                assert!((th - 27.5).abs() < 1e-9);
                assert!(bit, "Δf > 0 below the interval");
            }
            other => panic!("expected cooperating, got {other:?}"),
        }
    }

    #[test]
    fn classify_interval_touching_bottom() {
        let range = TemperatureRange::new(0.0, 70.0);
        // Δf(T) = −5 + 2T: |Δf| ≤ 10 for T ≤ 7.5; reference bit must be
        // the inverted sign above the interval = !(positive) = false…
        // above Th Δf > 0 so direct sign is 1, inverted ⇒ bit = false.
        match classify_pair(
            DeltaLine {
                offset: -5.0,
                slope: 2.0,
            },
            range,
            10.0,
        ) {
            PairClass::Cooperating { tl, th, bit } => {
                assert_eq!(tl, 0.0);
                assert!((th - 7.5).abs() < 1e-9);
                assert!(!bit);
            }
            other => panic!("expected cooperating, got {other:?}"),
        }
    }

    #[test]
    fn population_has_all_three_classes() {
        let a = array(1);
        let scheme = CooperativeScheme::new(CooperativeConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let lines = scheme.measure_lines(&a, &mut rng);
        let mut good = 0;
        let mut bad = 0;
        let mut coop = 0;
        for (_, line) in lines {
            match classify_pair(line, scheme.config.range, scheme.config.delta_f_th) {
                PairClass::Good { .. } => good += 1,
                PairClass::Bad => bad += 1,
                PairClass::Cooperating { .. } => coop += 1,
            }
        }
        assert!(good > 20, "good = {good}");
        assert!(coop >= 2, "coop = {coop}");
        // Bad pairs are rare but possible; just account for totals.
        assert_eq!(good + bad + coop, 64);
    }

    #[test]
    fn enroll_reconstruct_across_temperatures() {
        let a = array(3);
        let scheme = CooperativeScheme::new(CooperativeConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        for t in [0.0, 10.0, 25.0, 40.0, 55.0, 70.0] {
            let k = scheme
                .reconstruct(&a, &e.helper, Environment::at_temperature(t), &mut rng)
                .unwrap_or_else(|err| panic!("T = {t}: {err}"));
            assert_eq!(k, e.key, "T = {t}");
        }
    }

    #[test]
    fn out_of_range_temperature_rejected() {
        let a = array(5);
        let scheme = CooperativeScheme::new(CooperativeConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let r = scheme.reconstruct(&a, &e.helper, Environment::at_temperature(90.0), &mut rng);
        assert!(matches!(r, Err(ReconstructError::OutOfRange { .. })));
    }

    #[test]
    fn helper_wire_roundtrip() {
        let h = CooperativeHelper {
            array_len: 8,
            t_min: 0.0,
            t_max: 70.0,
            entries: vec![
                PairEntry::Good,
                PairEntry::Bad,
                PairEntry::Coop {
                    tl: 20.0,
                    th: 30.0,
                    assist: 3,
                    mask: 0,
                },
                PairEntry::CoopDiscarded { tl: 50.0, th: 60.0 },
            ],
            parity: BitVec::from_bools([true, false]),
        };
        let bytes = h.to_bytes();
        let parsed = CooperativeHelper::from_bytes(&bytes, SanityPolicy::Lenient).unwrap();
        assert_eq!(parsed, h);
        // Strict accepts this consistent helper too.
        assert!(CooperativeHelper::from_bytes(&bytes, SanityPolicy::Strict).is_ok());
    }

    #[test]
    fn strict_rejects_mask_to_non_good() {
        let h = CooperativeHelper {
            array_len: 8,
            t_min: 0.0,
            t_max: 70.0,
            entries: vec![
                PairEntry::Bad,
                PairEntry::Coop {
                    tl: 20.0,
                    th: 30.0,
                    assist: 2,
                    mask: 0, // bad pair as mask
                },
                PairEntry::CoopDiscarded { tl: 50.0, th: 60.0 },
            ],
            parity: BitVec::zeros(2),
        };
        let bytes = h.to_bytes();
        assert!(CooperativeHelper::from_bytes(&bytes, SanityPolicy::Lenient).is_ok());
        assert!(CooperativeHelper::from_bytes(&bytes, SanityPolicy::Strict).is_err());
    }

    #[test]
    fn link_out_of_range_rejected_always() {
        let h = CooperativeHelper {
            array_len: 8,
            t_min: 0.0,
            t_max: 70.0,
            entries: vec![PairEntry::Coop {
                tl: 1.0,
                th: 2.0,
                assist: 9,
                mask: 0,
            }],
            parity: BitVec::zeros(2),
        };
        assert!(CooperativeHelper::from_bytes(&h.to_bytes(), SanityPolicy::Lenient).is_err());
    }

    #[test]
    fn deterministic_scan_produces_leaky_transcript() {
        // Find a seed where the deterministic scan skips at least one
        // candidate; verify the skipped relation r_cj ≠ r_ci holds.
        let config = CooperativeConfig {
            selection: AssistSelection::DeterministicScan,
            ..CooperativeConfig::default()
        };
        let scheme = CooperativeScheme::new(config);
        for seed in 0..40u64 {
            let a = array(100 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let Ok((_, transcript)) = scheme.enroll_with_transcript(&a, &mut rng) else {
                continue;
            };
            let mut rng2 = StdRng::seed_from_u64(999 + seed);
            let lines = scheme.measure_lines(&a, &mut rng2);
            let bit_of = |idx: u16| -> Option<bool> {
                match classify_pair(lines[idx as usize].1, config.range, config.delta_f_th) {
                    PairClass::Cooperating { bit, .. } => Some(bit),
                    _ => None,
                }
            };
            for (_, skipped, chosen) in &transcript.scans {
                let chosen_bit = bit_of(*chosen);
                for s in skipped {
                    // The leak: the skipped donor's bit differs from the
                    // chosen donor's bit.
                    if let (Some(cb), Some(sb)) = (chosen_bit, bit_of(*s)) {
                        assert_ne!(cb, sb, "seed {seed}: skipped candidate must differ");
                        return; // demonstrated
                    }
                }
            }
        }
        panic!("no seed produced a skipping deterministic scan");
    }
}
