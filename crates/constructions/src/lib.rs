//! RO PUF helper-data constructions — the systems under attack.
//!
//! This crate implements every key-generation construction the DATE 2014
//! paper analyzes, plus the fuzzy-extractor reference it recommends:
//!
//! | module | construction | paper section |
//! |--------|--------------|---------------|
//! | [`pairing::neighbor`] | chain of neighbors (disjoint & overlapping) | IV-A |
//! | [`pairing::masking`] | 1-out-of-k masking | IV-B |
//! | [`pairing::lisa`] | sequential pairing algorithm (LISA) | IV-C, Alg. 1 |
//! | [`cooperative`] | temperature-aware cooperative RO PUF | IV-D, Fig. 3 |
//! | [`group`] | group-based RO PUF: entropy distiller → grouping → Kendall coding → ECC → entropy packing | V, Fig. 4, Alg. 2, Table I |
//! | [`fuzzy`] | fuzzy extractor (code parity + SHA-256), plus a robust variant that authenticates helper data | VII-A, Fig. 7 |
//! | [`device`] | black-box device oracle with read/write helper NVM | VI (attacker model) |
//! | [`validate`] | defender-side helper digests + tag-dispatched wire reparse | VII (countermeasures) |
//!
//! All schemes implement [`HelperDataScheme`]: enrollment produces a key
//! and **byte-encoded public helper data** (hand-written wire format in
//! [`wire`], because the paper's §VII-C argues that the precise storage
//! format and its sanity checks are security-relevant); reconstruction
//! parses attacker-controlled bytes and regenerates the key.
//!
//! # Examples
//!
//! ```
//! use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme};
//! use ropuf_constructions::HelperDataScheme;
//! use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
//! let scheme = LisaScheme::new(LisaConfig::default());
//! let enrollment = scheme.enroll(&array, &mut rng).unwrap();
//! let key = scheme
//!     .reconstruct(&array, &enrollment.helper, Environment::nominal(), &mut rng)
//!     .unwrap();
//! assert_eq!(key, enrollment.key);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cooperative;
pub mod device;
pub mod ecc_helper;
pub mod fuzzy;
pub mod group;
pub mod pairing;
pub mod scheme;
pub mod validate;
pub mod wire;

pub use device::{Device, DeviceResponse};
pub use ecc_helper::ParityHelper;
pub use scheme::{EnrollError, Enrollment, HelperDataScheme, ReconstructError, SanityPolicy};
pub use validate::{helper_digest, peek_scheme_tag, scheme_name_of_tag, validate_helper};
