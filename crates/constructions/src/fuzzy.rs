//! The fuzzy extractor reference construction (paper Section VII-A,
//! Fig. 7) and a manipulation-detecting *robust* variant.
//!
//! The paper's recommended alternative to the attacked ad-hoc schemes:
//! an ECC deals with reliability, a cryptographic hash with entropy, "in a
//! sequential manner". The robust variant (in the spirit of Boyen et al.,
//! CCS 2004) additionally binds the helper data to the PUF response with a hash
//! tag so that *any* manipulation is detected before a key is released —
//! turning the paper's differential failure-rate signal into a constant
//! (no-information) reject.

use rand::RngCore;
use ropuf_hash::sha256;
use ropuf_numeric::BitVec;
use ropuf_sim::{Environment, RoArray};

use crate::ecc_helper::ParityHelper;
use crate::pairing::neighbor::{disjoint_chain_pairs, pair_bits};
use crate::scheme::{EnrollError, Enrollment, HelperDataScheme, ReconstructError};
use crate::wire::{WireError, WireReader, WireWriter};

/// Wire-format scheme tag for fuzzy-extractor helper data.
pub const FUZZY_TAG: u8 = 0x46; // 'F'

/// Configuration of the [`FuzzyExtractorScheme`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzyConfig {
    /// Averaged measurements per RO at enrollment.
    pub enroll_avg: usize,
    /// Per-block ECC correction capability.
    pub ecc_t: usize,
    /// Enable the robust (helper-authenticating) variant.
    pub robust: bool,
}

impl Default for FuzzyConfig {
    fn default() -> Self {
        Self {
            enroll_avg: 16,
            // Raw chain bits carry no reliability selection, so the code
            // must absorb the full worst-case error rate — the reason the
            // fuzzy-extractor literature uses strong codes.
            ecc_t: 8,
            robust: false,
        }
    }
}

/// Parsed fuzzy-extractor helper data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyHelper {
    /// Number of ROs the helper was generated for.
    pub array_len: u16,
    /// ECC redundancy over the response bits.
    pub parity: BitVec,
    /// Authentication tag binding helper data to the response (robust
    /// variant only; empty otherwise).
    pub auth_tag: Vec<u8>,
}

impl FuzzyHelper {
    /// Serializes to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new(FUZZY_TAG);
        w.put_u16(self.array_len);
        w.put_bits(&self.parity);
        w.put_u8(self.auth_tag.len() as u8);
        for &b in &self.auth_tag {
            w.put_u8(b);
        }
        w.into_bytes()
    }

    /// Parses from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes, FUZZY_TAG)?;
        let array_len = r.take_u16()?;
        let parity = r.take_bits()?;
        let tag_len = r.take_u8()? as usize;
        if tag_len != 0 && tag_len != 32 {
            return Err(WireError::BadLength {
                what: "auth tag",
                value: tag_len as u64,
            });
        }
        let mut auth_tag = Vec::with_capacity(tag_len);
        for _ in 0..tag_len {
            auth_tag.push(r.take_u8()?);
        }
        r.finish()?;
        Ok(Self {
            array_len,
            parity,
            auth_tag,
        })
    }

    /// The authenticated portion of the helper bytes (everything except
    /// the tag itself).
    fn authenticated_bytes(&self) -> Vec<u8> {
        let untagged = FuzzyHelper {
            auth_tag: Vec::new(),
            ..self.clone()
        };
        untagged.to_bytes()
    }
}

/// The fuzzy-extractor key generator (Fig. 7).
#[derive(Debug, Clone)]
pub struct FuzzyExtractorScheme {
    config: FuzzyConfig,
}

impl FuzzyExtractorScheme {
    /// Creates the scheme.
    pub fn new(config: FuzzyConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &FuzzyConfig {
        &self.config
    }

    fn response(
        &self,
        array: &RoArray,
        env: Environment,
        rng: &mut dyn RngCore,
        avg: usize,
        scratch: &mut Vec<f64>,
    ) -> BitVec {
        if avg > 1 {
            // Enrollment-grade averaging: cold path, allocate freely.
            *scratch = array.measure_all_averaged(env, avg, rng);
        } else {
            array.measure_all_into(env, rng, scratch);
        }
        let pairs = disjoint_chain_pairs(array.dims());
        BitVec::from_bools(pair_bits(&pairs, scratch))
    }

    fn derive_key(w: &BitVec) -> BitVec {
        let digest = sha256(&w.to_bytes());
        BitVec::from_bytes(&digest, 256)
    }

    fn auth_tag(w: &BitVec, authenticated: &[u8]) -> Vec<u8> {
        let mut input = w.to_bytes();
        input.extend_from_slice(authenticated);
        sha256(&input).to_vec()
    }
}

impl HelperDataScheme for FuzzyExtractorScheme {
    fn name(&self) -> &'static str {
        "fuzzy-extractor"
    }

    fn clone_box(&self) -> Box<dyn HelperDataScheme> {
        Box::new(self.clone())
    }

    fn enroll(&self, array: &RoArray, rng: &mut dyn RngCore) -> Result<Enrollment, EnrollError> {
        let w = self.response(
            array,
            Environment::nominal(),
            rng,
            self.config.enroll_avg,
            &mut Vec::new(),
        );
        if w.len() < 8 {
            return Err(EnrollError::InsufficientEntropy {
                got: w.len(),
                needed: 8,
            });
        }
        let ecc = ParityHelper::new(w.len(), self.config.ecc_t).map_err(EnrollError::Ecc)?;
        let parity = ecc.parity(&w);
        let mut helper = FuzzyHelper {
            array_len: array.len() as u16,
            parity,
            auth_tag: Vec::new(),
        };
        if self.config.robust {
            helper.auth_tag = Self::auth_tag(&w, &helper.authenticated_bytes());
        }
        Ok(Enrollment {
            key: Self::derive_key(&w),
            helper: helper.to_bytes(),
        })
    }

    fn reconstruct(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
    ) -> Result<BitVec, ReconstructError> {
        self.reconstruct_with_scratch(array, helper, env, rng, &mut Vec::new())
    }

    fn reconstruct_with_scratch(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
        scratch: &mut Vec<f64>,
    ) -> Result<BitVec, ReconstructError> {
        let parsed = FuzzyHelper::from_bytes(helper)?;
        if parsed.array_len as usize != array.len() {
            return Err(WireError::Semantic {
                what: "array length mismatch",
            }
            .into());
        }
        if self.config.robust && parsed.auth_tag.is_empty() {
            return Err(ReconstructError::ManipulationDetected);
        }
        let w_noisy = self.response(array, env, rng, 1, scratch);
        if parsed.parity.len() == 0 && w_noisy.len() > 0 {
            return Err(ReconstructError::EccFailure);
        }
        let ecc = ParityHelper::new(w_noisy.len(), self.config.ecc_t)
            .map_err(|_| ReconstructError::EccFailure)?;
        let w = ecc
            .correct(&w_noisy, &parsed.parity)
            .map_err(|_| ReconstructError::EccFailure)?;
        if self.config.robust {
            let expect = Self::auth_tag(&w, &parsed.authenticated_bytes());
            if expect != parsed.auth_tag {
                return Err(ReconstructError::ManipulationDetected);
            }
        }
        Ok(Self::derive_key(&w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn array(seed: u64) -> RoArray {
        let mut rng = StdRng::seed_from_u64(seed);
        RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng)
    }

    #[test]
    fn roundtrip_plain() {
        let a = array(1);
        let scheme = FuzzyExtractorScheme::new(FuzzyConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        assert_eq!(e.key.len(), 256);
        for _ in 0..5 {
            let k = scheme
                .reconstruct(&a, &e.helper, Environment::nominal(), &mut rng)
                .unwrap();
            assert_eq!(k, e.key);
        }
    }

    #[test]
    fn roundtrip_robust() {
        let a = array(3);
        let scheme = FuzzyExtractorScheme::new(FuzzyConfig {
            robust: true,
            ..FuzzyConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let k = scheme
            .reconstruct(&a, &e.helper, Environment::nominal(), &mut rng)
            .unwrap();
        assert_eq!(k, e.key);
    }

    #[test]
    fn robust_detects_any_parity_flip() {
        let a = array(5);
        let scheme = FuzzyExtractorScheme::new(FuzzyConfig {
            robust: true,
            ..FuzzyConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(6);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let mut parsed = FuzzyHelper::from_bytes(&e.helper).unwrap();
        parsed.parity.flip(0);
        let r = scheme.reconstruct(&a, &parsed.to_bytes(), Environment::nominal(), &mut rng);
        // A single parity flip is *corrected* by the ECC, so w is still
        // recovered — and the tag check then exposes the manipulation.
        assert!(
            matches!(r, Err(ReconstructError::ManipulationDetected)),
            "{r:?}"
        );
    }

    #[test]
    fn robust_rejects_stripped_tag() {
        let a = array(7);
        let scheme = FuzzyExtractorScheme::new(FuzzyConfig {
            robust: true,
            ..FuzzyConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(8);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let mut parsed = FuzzyHelper::from_bytes(&e.helper).unwrap();
        parsed.auth_tag.clear();
        let r = scheme.reconstruct(&a, &parsed.to_bytes(), Environment::nominal(), &mut rng);
        assert!(matches!(r, Err(ReconstructError::ManipulationDetected)));
    }

    #[test]
    fn plain_variant_accepts_manipulated_parity() {
        // Contrast case: the non-robust extractor still reconstructs (or
        // fails) under flipped parity without detecting anything — the
        // paper's Section VI error-injection surface.
        let a = array(9);
        let scheme = FuzzyExtractorScheme::new(FuzzyConfig::default());
        let mut rng = StdRng::seed_from_u64(10);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let mut parsed = FuzzyHelper::from_bytes(&e.helper).unwrap();
        parsed.parity.flip(0);
        let r = scheme.reconstruct(&a, &parsed.to_bytes(), Environment::nominal(), &mut rng);
        assert!(r.is_ok(), "single flip is silently corrected: {r:?}");
        assert_eq!(r.unwrap(), e.key);
    }

    #[test]
    fn key_is_hash_of_response_not_response() {
        let a = array(11);
        let scheme = FuzzyExtractorScheme::new(FuzzyConfig::default());
        let mut rng = StdRng::seed_from_u64(12);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        // 256-bit key from a 64-bit response: must be the hash.
        assert_eq!(e.key.len(), 256);
        assert_ne!(e.key.count_ones(), 0);
    }

    #[test]
    fn helper_wire_roundtrip() {
        let h = FuzzyHelper {
            array_len: 64,
            parity: BitVec::from_bools((0..10).map(|i| i % 2 == 0)),
            auth_tag: vec![7u8; 32],
        };
        assert_eq!(FuzzyHelper::from_bytes(&h.to_bytes()).unwrap(), h);
        let bad_tag = FuzzyHelper {
            auth_tag: vec![1u8; 5],
            ..h.clone()
        };
        assert!(FuzzyHelper::from_bytes(&bad_tag.to_bytes()).is_err());
    }
}
