//! ECC redundancy helper data (parity construction).
//!
//! Every construction in the paper finishes with an ECC whose redundancy is
//! stored as public helper data ("ECC Redundancy" box in Figs. 4 and 7).
//! [`ParityHelper`] implements the systematic variant: the reference
//! response is the message of a systematic codeword and the stored helper
//! data is the parity part. On reconstruction, the stored parity plus the
//! regenerated (noisy) message bits are decoded; errors live only in the
//! message positions (the parity comes from NVM and is error-free unless
//! the *attacker* flips it — flipping one stored parity bit adds exactly
//! one error at the decoder input, the paper's acceleration trick).

use ropuf_ecc::{BchCode, BinaryCode, BlockCode, DecodeError};
use ropuf_numeric::BitVec;

/// Systematic-parity ECC helper data over block-composed BCH codes.
///
/// # Examples
///
/// ```
/// use ropuf_constructions::ParityHelper;
/// use ropuf_numeric::BitVec;
///
/// let ecc = ParityHelper::new(20, 2).unwrap();
/// let reference = BitVec::from_bools((0..20).map(|i| i % 3 == 0));
/// let parity = ecc.parity(&reference);
/// let mut noisy = reference.clone();
/// noisy.flip(4);
/// assert_eq!(ecc.correct(&noisy, &parity).unwrap(), reference);
/// ```
#[derive(Debug, Clone)]
pub struct ParityHelper {
    code: BlockCode<BchCode>,
    response_len: usize,
}

impl ParityHelper {
    /// Builds a parity helper for responses of `response_len` bits with
    /// per-block correction capability `t`.
    ///
    /// Picks the smallest BCH field whose full message length can carry a
    /// block of the response; the response is split into as few blocks as
    /// possible.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when no supported BCH code fits.
    pub fn new(response_len: usize, t: usize) -> Result<Self, String> {
        if response_len == 0 {
            return Err("response length must be positive".into());
        }
        // Prefer a single block when a field can hold the whole response;
        // otherwise block-compose over the largest supported field.
        let inner = BchCode::for_message_len(response_len.min(64), t)
            .or_else(|_| BchCode::for_message_len(response_len.min(32), t))
            .or_else(|_| BchCode::for_message_len(response_len.min(16), t))
            .map_err(|e| e.to_string())?;
        let code = BlockCode::new(inner, response_len);
        Ok(Self { code, response_len })
    }

    /// Response length protected by this helper.
    pub fn response_len(&self) -> usize {
        self.response_len
    }

    /// Per-block correction capability.
    pub fn t(&self) -> usize {
        self.code.t()
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.code.blocks()
    }

    /// Number of parity bits produced.
    pub fn parity_len(&self) -> usize {
        self.code.n() - self.code.blocks() * self.code.inner().k()
    }

    /// Parity bits stored per block.
    pub fn parity_per_block(&self) -> usize {
        self.code.inner().n() - self.code.inner().k()
    }

    /// Message (response) bits carried per block.
    pub fn message_per_block(&self) -> usize {
        self.code.inner().k()
    }

    /// Index of the ECC block protecting response bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.response_len()`.
    pub fn block_of_bit(&self, i: usize) -> usize {
        assert!(i < self.response_len, "bit index out of range");
        i / self.code.inner().k()
    }

    /// Computes the public parity bits for a reference response.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len() != self.response_len()`.
    pub fn parity(&self, reference: &BitVec) -> BitVec {
        assert_eq!(
            reference.len(),
            self.response_len,
            "response length mismatch"
        );
        let cw = self.code.encode(reference);
        // Extract parity positions: each inner block stores parity in its
        // low n−k positions (systematic encoding places the message high).
        let (ni, ki) = (self.code.inner().n(), self.code.inner().k());
        let mut parity = BitVec::new();
        for b in 0..self.code.blocks() {
            parity.extend_bits(&cw.slice(b * ni, ni - ki));
        }
        parity
    }

    /// Corrects a noisy response toward the reference encoded in `parity`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when any block holds more than `t` errors
    /// (counting both response noise and attacker-flipped parity bits).
    ///
    /// # Panics
    ///
    /// Panics if `noisy.len() != self.response_len()`.
    pub fn correct(&self, noisy: &BitVec, parity: &BitVec) -> Result<BitVec, DecodeError> {
        assert_eq!(noisy.len(), self.response_len, "response length mismatch");
        if parity.len() != self.parity_len() {
            return Err(DecodeError::LengthMismatch {
                expected: self.parity_len(),
                got: parity.len(),
            });
        }
        let word = self.assemble(noisy, parity);
        let decoded = self.code.decode(&word)?;
        Ok(decoded.message)
    }

    /// Number of errors the decoder sees (diagnostic, for Fig. 5).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when decoding fails.
    pub fn observed_errors(&self, noisy: &BitVec, parity: &BitVec) -> Result<usize, DecodeError> {
        let word = self.assemble(noisy, parity);
        self.code.decode(&word).map(|d| d.corrected)
    }

    /// Interleaves stored parity and (zero-padded) noisy message bits into
    /// the block codeword layout.
    fn assemble(&self, noisy: &BitVec, parity: &BitVec) -> BitVec {
        let (ni, ki) = (self.code.inner().n(), self.code.inner().k());
        let blocks = self.code.blocks();
        let mut padded = noisy.clone();
        while padded.len() < blocks * ki {
            padded.push(false);
        }
        let mut word = BitVec::new();
        for b in 0..blocks {
            word.extend_bits(&parity.slice(b * (ni - ki), ni - ki));
            word.extend_bits(&padded.slice(b * ki, ki));
        }
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_no_noise() {
        let ecc = ParityHelper::new(40, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r = BitVec::from_bools((0..40).map(|_| rng.random()));
        let p = ecc.parity(&r);
        assert_eq!(ecc.correct(&r, &p).unwrap(), r);
        assert_eq!(ecc.observed_errors(&r, &p).unwrap(), 0);
    }

    #[test]
    fn corrects_t_errors_per_block() {
        let ecc = ParityHelper::new(30, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let r = BitVec::from_bools((0..30).map(|_| rng.random()));
        let p = ecc.parity(&r);
        let mut noisy = r.clone();
        noisy.flip(0);
        noisy.flip(29);
        assert_eq!(ecc.correct(&noisy, &p).unwrap(), r);
    }

    #[test]
    fn parity_flip_adds_one_error() {
        let ecc = ParityHelper::new(24, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let r = BitVec::from_bools((0..24).map(|_| rng.random()));
        let p = ecc.parity(&r);
        for flips in 1..=ecc.t() {
            let mut p2 = p.clone();
            for i in 0..flips {
                p2.flip(i);
            }
            assert_eq!(
                ecc.observed_errors(&r, &p2).unwrap(),
                flips,
                "{flips} parity flips"
            );
            assert_eq!(ecc.correct(&r, &p2).unwrap(), r);
        }
        // t+1 flips in one block break it.
        let mut p2 = p.clone();
        for i in 0..=ecc.t() {
            p2.flip(i);
        }
        assert!(ecc.correct(&r, &p2).is_err());
    }

    #[test]
    fn too_many_response_errors_fail() {
        let ecc = ParityHelper::new(16, 1).unwrap();
        let r = BitVec::zeros(16);
        let p = ecc.parity(&r);
        let mut noisy = r.clone();
        noisy.flip(1);
        noisy.flip(2);
        assert!(ecc.correct(&noisy, &p).is_err());
    }

    #[test]
    fn long_response_multi_block() {
        let ecc = ParityHelper::new(300, 2).unwrap();
        assert!(ecc.blocks() > 1);
        let mut rng = StdRng::seed_from_u64(4);
        let r = BitVec::from_bools((0..300).map(|_| rng.random()));
        let p = ecc.parity(&r);
        assert_eq!(p.len(), ecc.parity_len());
        let mut noisy = r.clone();
        noisy.flip(5);
        noisy.flip(150);
        noisy.flip(299);
        assert_eq!(ecc.correct(&noisy, &p).unwrap(), r);
    }

    #[test]
    fn wrong_parity_length_is_error() {
        let ecc = ParityHelper::new(16, 1).unwrap();
        let r = BitVec::zeros(16);
        assert!(matches!(
            ecc.correct(&r, &BitVec::zeros(3)),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn zero_length_rejected() {
        assert!(ParityHelper::new(0, 2).is_err());
    }
}
