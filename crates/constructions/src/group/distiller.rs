//! The entropy distiller (paper Section V-A; DAC 2013).
//!
//! Systematic manufacturing variation is modelled via polynomial
//! regression on the two-dimensional frequency map `f(x, y)`; the
//! residuals are the desired random variation. The fitted coefficients
//! `β_{i,j}` are **public helper data**, and a subtraction procedure
//! removes the systematic component at every key regeneration — which is
//! exactly the attack surface of Section VI-C/D: an attacker who rewrites
//! the coefficients injects arbitrary spatial patterns into the residuals.

use ropuf_numeric::polyfit::{Poly2d, PolyFitError};
use ropuf_sim::ArrayDims;

/// The entropy distiller: fit-and-subtract of a polynomial surface.
///
/// # Examples
///
/// ```
/// use ropuf_constructions::group::Distiller;
/// use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let dims = ArrayDims::new(32, 16); // the 16×32 array of the paper
/// let array = RoArrayBuilder::new(dims).build(&mut rng);
/// let freqs = array.measure_all(Environment::nominal(), &mut rng);
/// let distiller = Distiller::new(2);
/// let poly = distiller.fit(dims, &freqs).unwrap();
/// let residuals = Distiller::subtract(dims, &freqs, &poly);
/// assert_eq!(residuals.len(), freqs.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Distiller {
    degree: usize,
}

impl Distiller {
    /// Creates a distiller of polynomial degree `p`. The paper's
    /// experiments indicate `p = 2` and `p = 3` as good values for a
    /// 16×32 array.
    pub fn new(degree: usize) -> Self {
        Self { degree }
    }

    /// Polynomial degree `p`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Fits the systematic surface to a measured frequency map
    /// (least mean squares, as in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`PolyFitError`] when the sample set cannot determine the
    /// coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `freqs.len() != dims.len()`.
    pub fn fit(&self, dims: ArrayDims, freqs: &[f64]) -> Result<Poly2d, PolyFitError> {
        assert_eq!(freqs.len(), dims.len(), "frequency map size mismatch");
        let samples: Vec<(f64, f64, f64)> = dims
            .iter_coords()
            .map(|(i, x, y)| (x as f64, y as f64, freqs[i]))
            .collect();
        Poly2d::fit(self.degree, &samples)
    }

    /// The subtraction procedure: residual `f_i − poly(x_i, y_i)` per RO.
    ///
    /// # Panics
    ///
    /// Panics if `freqs.len() != dims.len()`.
    pub fn subtract(dims: ArrayDims, freqs: &[f64], poly: &Poly2d) -> Vec<f64> {
        assert_eq!(freqs.len(), dims.len(), "frequency map size mismatch");
        dims.iter_coords()
            .map(|(i, x, y)| freqs[i] - poly.eval(x as f64, y as f64))
            .collect()
    }

    /// Fraction of map variance removed by the fit (R², diagnostic for the
    /// paper's Fig. 2 reproduction).
    ///
    /// # Panics
    ///
    /// Panics if `freqs.len() != dims.len()`.
    pub fn r_squared(dims: ArrayDims, freqs: &[f64], poly: &Poly2d) -> f64 {
        let residuals = Self::subtract(dims, freqs, poly);
        let var_f = ropuf_numeric::stats::variance(freqs);
        let var_r = ropuf_numeric::stats::variance(&residuals);
        if var_f == 0.0 {
            return 0.0;
        }
        1.0 - var_r / var_f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_sim::{Environment, RoArrayBuilder, VariationProfile};

    #[test]
    fn removes_systematic_trend() {
        let mut rng = StdRng::seed_from_u64(3);
        let dims = ArrayDims::new(32, 16);
        let profile = VariationProfile {
            systematic_peak_hz: 5.0e6, // strong trend
            ..VariationProfile::default()
        };
        let array = RoArrayBuilder::new(dims).profile(profile).build(&mut rng);
        let freqs = array.measure_all_averaged(Environment::nominal(), 8, &mut rng);
        let d = Distiller::new(2);
        let poly = d.fit(dims, &freqs).unwrap();
        let residuals = Distiller::subtract(dims, &freqs, &poly);
        let sd_res = ropuf_numeric::stats::std_dev(&residuals);
        let sd_raw = ropuf_numeric::stats::std_dev(&freqs);
        assert!(
            sd_res < 0.7 * sd_raw,
            "residual sd {sd_res} vs raw {sd_raw}"
        );
        // Residual spread should approach the random component sigma.
        assert!(sd_res < 1.3 * profile.random_sigma_hz, "sd_res {sd_res}");
    }

    #[test]
    fn r_squared_high_with_trend_low_without() {
        let mut rng = StdRng::seed_from_u64(4);
        let dims = ArrayDims::new(24, 12);
        let trendy = RoArrayBuilder::new(dims)
            .profile(VariationProfile {
                systematic_peak_hz: 10.0e6,
                ..VariationProfile::default()
            })
            .build(&mut rng);
        let flat = RoArrayBuilder::new(dims)
            .profile(VariationProfile::random_only())
            .build(&mut rng);
        let d = Distiller::new(2);
        let ft = trendy.measure_all_averaged(Environment::nominal(), 8, &mut rng);
        let pt = d.fit(dims, &ft).unwrap();
        assert!(Distiller::r_squared(dims, &ft, &pt) > 0.8);
        let ff = flat.measure_all_averaged(Environment::nominal(), 8, &mut rng);
        let pf = d.fit(dims, &ff).unwrap();
        assert!(Distiller::r_squared(dims, &ff, &pf) < 0.2);
    }

    #[test]
    fn residual_order_immune_to_refit_noise() {
        // Fitting twice on different noisy maps of the same device should
        // yield nearly identical residual structure.
        let mut rng = StdRng::seed_from_u64(5);
        let dims = ArrayDims::new(16, 8);
        let array = RoArrayBuilder::new(dims).build(&mut rng);
        let d = Distiller::new(2);
        let f1 = array.measure_all_averaged(Environment::nominal(), 32, &mut rng);
        let f2 = array.measure_all_averaged(Environment::nominal(), 32, &mut rng);
        let r1 = Distiller::subtract(dims, &f1, &d.fit(dims, &f1).unwrap());
        let r2 = Distiller::subtract(dims, &f2, &d.fit(dims, &f2).unwrap());
        let mut agree = 0;
        let mut total = 0;
        for i in 0..r1.len() {
            for j in i + 1..r1.len() {
                if (r1[i] - r1[j]).abs() > 100e3 {
                    total += 1;
                    if (r1[i] > r1[j]) == (r2[i] > r2[j]) {
                        agree += 1;
                    }
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.99, "{agree}/{total}");
    }

    #[test]
    fn degree_zero_is_mean_removal() {
        let dims = ArrayDims::new(4, 4);
        let freqs: Vec<f64> = (0..16).map(|i| 100.0 + i as f64).collect();
        let d = Distiller::new(0);
        let poly = d.fit(dims, &freqs).unwrap();
        let mean = ropuf_numeric::stats::mean(&freqs);
        assert!((poly.eval(0.0, 0.0) - mean).abs() < 1e-9);
    }
}
