//! The full group-based RO PUF key generator (paper Fig. 4).
//!
//! Enrollment: measure → entropy distiller fit → Algorithm 2 grouping →
//! Kendall coding → ECC parity → entropy packing → key. The public helper
//! data carries the polynomial coefficients, the per-RO group assignment
//! and the ECC redundancy — exactly the three NVM boxes of Fig. 4, and all
//! three are writable by the attacker.

use rand::RngCore;
use ropuf_numeric::polyfit::{coefficient_count, Poly2d};
use ropuf_numeric::BitVec;
use ropuf_sim::{Environment, RoArray};

use crate::ecc_helper::ParityHelper;
use crate::group::distiller::Distiller;
use crate::group::grouping::{group_ros, Grouping};
use crate::group::kendall::group_kendall_bits;
use crate::group::packing::{pack_order, packed_bits};
use crate::scheme::{EnrollError, Enrollment, HelperDataScheme, ReconstructError, SanityPolicy};
use crate::wire::{WireError, WireReader, WireWriter};

/// Wire-format scheme tag for group-based helper data.
pub const GROUP_TAG: u8 = 0x47; // 'G'

/// Configuration of the [`GroupBasedScheme`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupBasedConfig {
    /// Distiller polynomial degree `p` (paper: 2 or 3).
    pub degree: usize,
    /// Grouping threshold `Δf_th` in Hz (applied to residuals).
    pub delta_f_th: f64,
    /// Averaged measurements per RO at enrollment.
    pub enroll_avg: usize,
    /// Per-block ECC correction capability.
    pub ecc_t: usize,
    /// Apply entropy packing (paper Section V-E). With `false` the key is
    /// the raw (error-corrected) Kendall bit string.
    pub packing: bool,
    /// Helper-data parsing strictness. [`SanityPolicy::Strict`]
    /// re-validates the grouping invariant against freshly measured
    /// residuals.
    pub sanity: SanityPolicy,
}

impl Default for GroupBasedConfig {
    fn default() -> Self {
        Self {
            degree: 2,
            delta_f_th: 300.0e3,
            enroll_avg: 16,
            ecc_t: 4,
            packing: true,
            sanity: SanityPolicy::Lenient,
        }
    }
}

/// Parsed group-based helper data (the three public NVM fields of Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBasedHelper {
    /// Array width the helper was generated for.
    pub cols: u16,
    /// Array height the helper was generated for.
    pub rows: u16,
    /// Distiller polynomial degree.
    pub degree: u8,
    /// Polynomial coefficients `β_{i,j}` in canonical order.
    pub coefficients: Vec<f64>,
    /// Group id of each RO.
    pub assignments: Vec<u16>,
    /// ECC redundancy over the concatenated Kendall bits.
    pub parity: BitVec,
}

impl GroupBasedHelper {
    /// Serializes to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new(GROUP_TAG);
        w.put_u16(self.cols);
        w.put_u16(self.rows);
        w.put_u8(self.degree);
        w.put_f64_list(&self.coefficients);
        w.put_u16_list(&self.assignments);
        w.put_bits(&self.parity);
        w.into_bytes()
    }

    /// Parses from the wire format with structural sanity checks.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input, wrong coefficient count
    /// or an assignment list that is not a partition prefix (group ids
    /// must be dense `0..=max`).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes, GROUP_TAG)?;
        let cols = r.take_u16()?;
        let rows = r.take_u16()?;
        let degree = r.take_u8()?;
        if degree > 8 {
            return Err(WireError::Semantic {
                what: "distiller degree too large",
            });
        }
        let coefficients = r.take_f64_list()?;
        if coefficients.len() != coefficient_count(degree as usize) {
            return Err(WireError::BadLength {
                what: "coefficient list",
                value: coefficients.len() as u64,
            });
        }
        let assignments = r.take_u16_list()?;
        if assignments.len() != cols as usize * rows as usize {
            return Err(WireError::BadLength {
                what: "group assignment list",
                value: assignments.len() as u64,
            });
        }
        if let Some(&max) = assignments.iter().max() {
            let mut present = vec![false; max as usize + 1];
            for &g in &assignments {
                present[g as usize] = true;
            }
            if !present.iter().all(|&p| p) {
                return Err(WireError::Semantic {
                    what: "group ids are not dense",
                });
            }
        }
        let parity = r.take_bits()?;
        r.finish()?;
        Ok(Self {
            cols,
            rows,
            degree,
            coefficients,
            assignments,
            parity,
        })
    }

    /// The distiller polynomial encoded in this helper.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient count is inconsistent (prevented by
    /// [`Self::from_bytes`]).
    pub fn poly(&self) -> Poly2d {
        Poly2d::from_coefficients(self.degree as usize, self.coefficients.clone())
            .expect("coefficient count validated at parse time")
    }

    /// The grouping encoded in this helper.
    pub fn grouping(&self) -> Grouping {
        let a: Vec<usize> = self.assignments.iter().map(|&g| g as usize).collect();
        Grouping::from_assignments(&a)
    }
}

/// The group-based RO PUF key generator.
#[derive(Debug, Clone)]
pub struct GroupBasedScheme {
    config: GroupBasedConfig,
}

impl GroupBasedScheme {
    /// Creates the scheme.
    pub fn new(config: GroupBasedConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GroupBasedConfig {
        &self.config
    }

    /// Concatenated Kendall bits of a grouping over a residual map, groups
    /// in ascending id order, members canonically labelled.
    pub fn kendall_vector(grouping: &Grouping, residuals: &[f64]) -> BitVec {
        let mut bits = BitVec::new();
        for members in &grouping.groups {
            bits.extend(group_kendall_bits(members, residuals));
        }
        bits
    }

    /// Packs per-group orders into the final key (entropy packing), or
    /// returns the raw Kendall bits when packing is disabled.
    fn derive_key(
        &self,
        grouping: &Grouping,
        kendall: &BitVec,
    ) -> Result<BitVec, ReconstructError> {
        if !self.config.packing {
            return Ok(kendall.clone());
        }
        let mut key = BitVec::new();
        let mut pos = 0usize;
        for members in &grouping.groups {
            let g = members.len();
            let nbits = ropuf_numeric::permutation::kendall_code_bits(g);
            let group_bits: Vec<bool> = (pos..pos + nbits).map(|i| kendall.get(i)).collect();
            pos += nbits;
            if g < 2 {
                continue;
            }
            let order = ropuf_numeric::Permutation::from_kendall_bits(&group_bits)
                .ok_or(ReconstructError::InconsistentOrder)?;
            key.extend_bits(&pack_order(&order));
        }
        Ok(key)
    }

    /// Key length in bits for a given grouping.
    pub fn key_bits(&self, grouping: &Grouping) -> usize {
        if self.config.packing {
            grouping.groups.iter().map(|g| packed_bits(g.len())).sum()
        } else {
            grouping.kendall_bits()
        }
    }
}

impl HelperDataScheme for GroupBasedScheme {
    fn name(&self) -> &'static str {
        "group-based"
    }

    fn clone_box(&self) -> Box<dyn HelperDataScheme> {
        Box::new(self.clone())
    }

    fn enroll(&self, array: &RoArray, rng: &mut dyn RngCore) -> Result<Enrollment, EnrollError> {
        let dims = array.dims();
        let env = Environment::nominal();
        let freqs = array.measure_all_averaged(env, self.config.enroll_avg, rng);
        let distiller = Distiller::new(self.config.degree);
        let poly = distiller
            .fit(dims, &freqs)
            .map_err(|e| EnrollError::Distiller(e.to_string()))?;
        let residuals = Distiller::subtract(dims, &freqs, &poly);
        let grouping = group_ros(&residuals, self.config.delta_f_th);
        let kendall = Self::kendall_vector(&grouping, &residuals);
        if kendall.is_empty() {
            return Err(EnrollError::InsufficientEntropy { got: 0, needed: 1 });
        }
        let ecc = ParityHelper::new(kendall.len(), self.config.ecc_t).map_err(EnrollError::Ecc)?;
        let parity = ecc.parity(&kendall);
        let key = self
            .derive_key(&grouping, &kendall)
            .expect("enrollment Kendall bits are consistent by construction");
        let assignments: Vec<u16> = grouping
            .assignments(dims.len())
            .into_iter()
            .map(|g| g as u16)
            .collect();
        let helper = GroupBasedHelper {
            cols: dims.cols() as u16,
            rows: dims.rows() as u16,
            degree: self.config.degree as u8,
            coefficients: poly.coefficients().to_vec(),
            assignments,
            parity,
        };
        Ok(Enrollment {
            key,
            helper: helper.to_bytes(),
        })
    }

    fn reconstruct(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
    ) -> Result<BitVec, ReconstructError> {
        self.reconstruct_with_scratch(array, helper, env, rng, &mut Vec::new())
    }

    fn reconstruct_with_scratch(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
        scratch: &mut Vec<f64>,
    ) -> Result<BitVec, ReconstructError> {
        let dims = array.dims();
        let parsed = GroupBasedHelper::from_bytes(helper)?;
        if (parsed.cols as usize, parsed.rows as usize) != (dims.cols(), dims.rows()) {
            return Err(WireError::Semantic {
                what: "array dimension mismatch",
            }
            .into());
        }
        array.measure_all_into(env, rng, scratch);
        let freqs: &[f64] = scratch;
        let poly = parsed.poly();
        let residuals = Distiller::subtract(dims, &freqs, &poly);
        let grouping = parsed.grouping();
        if self.config.sanity == SanityPolicy::Strict
            && !grouping.is_valid(&residuals, self.config.delta_f_th)
        {
            return Err(WireError::Semantic {
                what: "grouping violates the discrepancy threshold",
            }
            .into());
        }
        let kendall = Self::kendall_vector(&grouping, &residuals);
        if kendall.is_empty() {
            return Err(ReconstructError::EccFailure);
        }
        let ecc = ParityHelper::new(kendall.len(), self.config.ecc_t)
            .map_err(|_| ReconstructError::EccFailure)?;
        let corrected = ecc
            .correct(&kendall, &parsed.parity)
            .map_err(|_| ReconstructError::EccFailure)?;
        self.derive_key(&grouping, &corrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn array(seed: u64, dims: ArrayDims) -> RoArray {
        let mut rng = StdRng::seed_from_u64(seed);
        RoArrayBuilder::new(dims).build(&mut rng)
    }

    #[test]
    fn enroll_reconstruct_roundtrip() {
        let a = array(1, ArrayDims::new(16, 8));
        let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        assert!(!e.key.is_empty());
        for trial in 0..10 {
            let k = scheme
                .reconstruct(&a, &e.helper, Environment::nominal(), &mut rng)
                .unwrap_or_else(|err| panic!("trial {trial}: {err}"));
            assert_eq!(k, e.key, "trial {trial}");
        }
    }

    #[test]
    fn roundtrip_without_packing() {
        let a = array(3, ArrayDims::new(16, 8));
        let scheme = GroupBasedScheme::new(GroupBasedConfig {
            packing: false,
            ..GroupBasedConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let k = scheme
            .reconstruct(&a, &e.helper, Environment::nominal(), &mut rng)
            .unwrap();
        assert_eq!(k, e.key);
    }

    #[test]
    fn packed_key_shorter_than_kendall() {
        let a = array(5, ArrayDims::new(16, 8));
        let packed = GroupBasedScheme::new(GroupBasedConfig::default());
        let raw = GroupBasedScheme::new(GroupBasedConfig {
            packing: false,
            ..GroupBasedConfig::default()
        });
        let mut rng1 = StdRng::seed_from_u64(6);
        let mut rng2 = StdRng::seed_from_u64(6);
        let ep = packed.enroll(&a, &mut rng1).unwrap();
        let er = raw.enroll(&a, &mut rng2).unwrap();
        assert!(
            ep.key.len() < er.key.len(),
            "packed {} vs kendall {}",
            ep.key.len(),
            er.key.len()
        );
    }

    #[test]
    fn helper_wire_roundtrip() {
        let a = array(7, ArrayDims::new(8, 4));
        let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
        let mut rng = StdRng::seed_from_u64(8);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let parsed = GroupBasedHelper::from_bytes(&e.helper).unwrap();
        assert_eq!(parsed.to_bytes(), e.helper);
        assert_eq!(parsed.cols, 8);
        assert_eq!(parsed.rows, 4);
        assert_eq!(parsed.degree, 2);
    }

    #[test]
    fn coefficient_count_mismatch_rejected() {
        let a = array(9, ArrayDims::new(8, 4));
        let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
        let mut rng = StdRng::seed_from_u64(10);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let mut parsed = GroupBasedHelper::from_bytes(&e.helper).unwrap();
        parsed.coefficients.pop();
        assert!(GroupBasedHelper::from_bytes(&parsed.to_bytes()).is_err());
    }

    #[test]
    fn sparse_group_ids_rejected() {
        let a = array(11, ArrayDims::new(8, 4));
        let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
        let mut rng = StdRng::seed_from_u64(12);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let mut parsed = GroupBasedHelper::from_bytes(&e.helper).unwrap();
        // Renumber every RO of group 0 to a fresh non-dense id.
        let max = *parsed.assignments.iter().max().unwrap();
        for g in parsed.assignments.iter_mut() {
            if *g == 0 {
                *g = max + 2;
            }
        }
        assert!(GroupBasedHelper::from_bytes(&parsed.to_bytes()).is_err());
    }

    #[test]
    fn attacker_can_rewrite_polynomial_lenient() {
        // The attack premise of Section VI-C: a rewritten helper blob with
        // a steep polynomial parses fine under the lenient policy.
        let a = array(13, ArrayDims::new(10, 4));
        let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
        let mut rng = StdRng::seed_from_u64(14);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let mut parsed = GroupBasedHelper::from_bytes(&e.helper).unwrap();
        parsed.coefficients[1] += 1.0e9; // violent x-gradient
        let r = scheme.reconstruct(&a, &parsed.to_bytes(), Environment::nominal(), &mut rng);
        // Either reconstructs (to a different key) or fails ECC — but the
        // helper data itself is accepted.
        match r {
            Ok(k) => assert_ne!(k, e.key),
            Err(ReconstructError::EccFailure) => {}
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }

    #[test]
    fn entropy_accounting_matches_grouping() {
        let a = array(15, ArrayDims::new(16, 8));
        let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
        let mut rng = StdRng::seed_from_u64(16);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let parsed = GroupBasedHelper::from_bytes(&e.helper).unwrap();
        let grouping = parsed.grouping();
        assert_eq!(e.key.len(), scheme.key_bits(&grouping));
        // ⌈log2 g!⌉ per group is never below the entropy bound.
        assert!(e.key.len() as f64 >= grouping.entropy_bits() - 1e-9);
    }

    #[test]
    fn reconstruct_at_moderate_temperature() {
        let a = array(17, ArrayDims::new(16, 8));
        let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
        let mut rng = StdRng::seed_from_u64(18);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let k = scheme
            .reconstruct(&a, &e.helper, Environment::at_temperature(35.0), &mut rng)
            .unwrap();
        assert_eq!(k, e.key);
    }
}
