//! Entropy packing (paper Section V-E).
//!
//! Kendall coding is non-uniform — many bit vectors never occur — so the
//! paper proposes converting the (error-corrected) Kendall bits to a
//! compact coding (Table I, column 2) to maintain entropy. The compact
//! code of a `g`-member group is the lexicographic rank of its frequency
//! order in `⌈log₂(g!)⌉` bits. As the paper notes, the fix is partial:
//! `g!` is not a power of two for `g > 2`, so a small bias remains.
//!
//! For groups beyond 20 members (where the rank overflows `u64`) the
//! packing falls back to per-digit Lehmer coding: digit `i ∈ [0, g−i)`
//! packed in `⌈log₂(g−i)⌉` bits — slightly longer but overflow-free.

use ropuf_numeric::permutation::{compact_code_bits, factorial, Permutation};
use ropuf_numeric::BitVec;

/// Number of packed bits produced for a `g`-member group.
pub fn packed_bits(g: usize) -> usize {
    if g < 2 {
        0
    } else if g <= 20 {
        compact_code_bits(g)
    } else {
        (0..g).map(|i| bits_for(g - i)).sum()
    }
}

fn bits_for(radix: usize) -> usize {
    if radix <= 1 {
        0
    } else {
        usize::BITS as usize - (radix - 1).leading_zeros() as usize
    }
}

/// Packs a group's frequency order into compact bits (little-endian rank
/// for `g ≤ 20`, Lehmer digits beyond).
pub fn pack_order(order: &Permutation) -> BitVec {
    let g = order.len();
    if g < 2 {
        return BitVec::new();
    }
    if g <= 20 {
        let rank = order.lehmer_rank();
        let nbits = compact_code_bits(g);
        return BitVec::from_bools((0..nbits).map(|b| (rank >> b) & 1 == 1));
    }
    // Lehmer digit fallback.
    let mut out = BitVec::new();
    let perm = order.as_slice();
    for i in 0..g {
        let digit = perm[i + 1..].iter().filter(|&&v| v < perm[i]).count() as u64;
        let nbits = bits_for(g - i);
        for b in 0..nbits {
            out.push((digit >> b) & 1 == 1);
        }
    }
    out
}

/// Unpacks compact bits back into the frequency order (inverse of
/// [`pack_order`]). Returns `None` when the bits encode an out-of-range
/// rank or digit — possible because `g!` is not a power of two (the
/// residual non-uniformity the paper points out).
pub fn unpack_order(bits: &BitVec, g: usize) -> Option<Permutation> {
    if g < 2 {
        return Some(Permutation::identity(g));
    }
    if bits.len() != packed_bits(g) {
        return None;
    }
    if g <= 20 {
        let mut rank: u64 = 0;
        for b in (0..bits.len()).rev() {
            rank = (rank << 1) | bits.get(b) as u64;
        }
        if rank >= factorial(g) {
            return None;
        }
        return Some(Permutation::from_lehmer_rank(rank, g));
    }
    // Lehmer digit fallback.
    let mut avail: Vec<usize> = (0..g).collect();
    let mut perm = Vec::with_capacity(g);
    let mut pos = 0usize;
    for i in 0..g {
        let nbits = bits_for(g - i);
        let mut digit = 0usize;
        for b in 0..nbits {
            digit |= (bits.get(pos + b) as usize) << b;
        }
        pos += nbits;
        if digit >= avail.len() {
            return None;
        }
        perm.push(avail.remove(digit));
    }
    Some(Permutation::from_slice(&perm).expect("constructed from available set"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_compact_widths() {
        assert_eq!(packed_bits(4), 5);
        assert_eq!(packed_bits(2), 1);
        assert_eq!(packed_bits(1), 0);
        assert_eq!(packed_bits(0), 0);
    }

    #[test]
    fn roundtrip_exhaustive_g4() {
        for r in 0..24 {
            let p = Permutation::from_lehmer_rank(r, 4);
            let packed = pack_order(&p);
            assert_eq!(packed.len(), 5);
            assert_eq!(unpack_order(&packed, 4), Some(p));
        }
    }

    #[test]
    fn roundtrip_mid_sizes() {
        for g in [2usize, 3, 7, 12, 20] {
            let p = Permutation::sorting_desc(
                &(0..g)
                    .map(|i| ((i * 31 + 7) % g) as f64)
                    .collect::<Vec<_>>(),
            );
            let packed = pack_order(&p);
            assert_eq!(packed.len(), packed_bits(g), "g = {g}");
            assert_eq!(unpack_order(&packed, g), Some(p), "g = {g}");
        }
    }

    #[test]
    fn roundtrip_large_group_digit_fallback() {
        for g in [21usize, 33, 50] {
            let values: Vec<f64> = (0..g).map(|i| ((i * 37 + 11) % g) as f64).collect();
            let p = Permutation::sorting_desc(&values);
            let packed = pack_order(&p);
            assert_eq!(packed.len(), packed_bits(g), "g = {g}");
            assert_eq!(unpack_order(&packed, g), Some(p), "g = {g}");
        }
    }

    #[test]
    fn invalid_rank_detected() {
        // g = 3: ranks 0..5 valid in 3 bits; ranks 6,7 invalid.
        let bits = BitVec::from_bools([false, true, true]); // rank 6
        assert_eq!(unpack_order(&bits, 3), None);
    }

    #[test]
    fn wrong_length_detected() {
        let bits = BitVec::zeros(4);
        assert_eq!(unpack_order(&bits, 4), None); // needs 5 bits
    }

    #[test]
    fn residual_bias_exists_for_g3() {
        // The paper's caveat: ⌈log2 3!⌉ = 3 bits cover 8 patterns but only
        // 6 orders exist ⇒ 2 of 8 patterns are invalid.
        let invalid = (0u64..8)
            .filter(|&r| {
                let bits = BitVec::from_bools((0..3).map(|b| (r >> b) & 1 == 1));
                unpack_order(&bits, 3).is_none()
            })
            .count();
        assert_eq!(invalid, 2);
    }
}
