//! The grouping algorithm (paper Section V-B, Algorithm 2).
//!
//! ROs are partitioned strictly into groups such that **every** pair of
//! ROs within a group exceeds the frequency-discrepancy threshold `Δf_th`.
//! The greedy algorithm walks the ROs in descending frequency order and
//! assigns each to the first group whose most recently added member is
//! more than `Δf_th` above it; this maximizes the available entropy
//! `Σ_j log₂(|G_j|!)` by preferring few large groups.

/// A strict partition of RO indices into groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    /// `groups[j]` lists the RO indices of group `j`, in descending
    /// frequency order (the order Algorithm 2 added them).
    pub groups: Vec<Vec<usize>>,
}

impl Grouping {
    /// Group id of each RO (inverse mapping).
    ///
    /// # Panics
    ///
    /// Panics if the grouping does not cover `0..n` exactly.
    pub fn assignments(&self, n: usize) -> Vec<usize> {
        let mut out = vec![usize::MAX; n];
        for (g, members) in self.groups.iter().enumerate() {
            for &i in members {
                assert!(i < n && out[i] == usize::MAX, "grouping is not a partition");
                out[i] = g;
            }
        }
        assert!(out.iter().all(|&g| g != usize::MAX), "grouping misses ROs");
        out
    }

    /// Rebuilds a [`Grouping`] from per-RO group ids (used when parsing
    /// helper data). Group member lists are ordered by `values` descending
    /// when provided, else by RO index.
    pub fn from_assignments(assignments: &[usize]) -> Self {
        let ngroups = assignments.iter().copied().max().map_or(0, |m| m + 1);
        let mut groups = vec![Vec::new(); ngroups];
        for (i, &g) in assignments.iter().enumerate() {
            groups[g].push(i);
        }
        Self { groups }
    }

    /// Available entropy `Σ_j log₂(|G_j|!)` in bits.
    pub fn entropy_bits(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| ropuf_numeric::stats::ln_factorial(g.len() as u64) / std::f64::consts::LN_2)
            .sum()
    }

    /// Number of Kendall bits the grouping produces:
    /// `Σ_j |G_j|(|G_j|−1)/2`.
    pub fn kendall_bits(&self) -> usize {
        self.groups
            .iter()
            .map(|g| ropuf_numeric::permutation::kendall_code_bits(g.len()))
            .sum()
    }

    /// Checks the defining invariant against a value map: every in-group
    /// pair differs by more than `delta_f_th`.
    pub fn is_valid(&self, values: &[f64], delta_f_th: f64) -> bool {
        self.groups.iter().all(|g| {
            g.iter().enumerate().all(|(a, &i)| {
                g.iter()
                    .skip(a + 1)
                    .all(|&j| (values[i] - values[j]).abs() > delta_f_th)
            })
        })
    }
}

/// Algorithm 2 (paper Section V-B): greedy grouping of `values` (measured
/// frequencies or distiller residuals) with threshold `delta_f_th`.
///
/// # Examples
///
/// ```
/// use ropuf_constructions::group::group_ros;
///
/// let values = [10.0, 7.0, 9.5, 6.5];
/// let g = group_ros(&values, 2.0);
/// // 10.0 and 7.0 fit one group (gap 3 > 2); 9.5 collides with 10.0 so it
/// // opens group 2, which then takes 6.5 (gap 3 > 2).
/// assert_eq!(g.groups, vec![vec![0, 1], vec![2, 3]]);
/// ```
pub fn group_ros(values: &[f64], delta_f_th: f64) -> Grouping {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // last[j] = value of the RO last added to group j (descending walk ⇒
    // this is the group's minimum so far). The virtual group "0" of the
    // paper's pseudocode (RO₀.f = ∞) is modelled by pushing new groups on
    // demand.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut last: Vec<f64> = Vec::new();
    for &i in &order {
        let mut j = 0;
        while j < groups.len() && last[j] - values[i] <= delta_f_th {
            j += 1;
        }
        if j == groups.len() {
            groups.push(Vec::new());
            last.push(0.0);
        }
        groups[j].push(i);
        last[j] = values[i];
    }
    Grouping { groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_numeric::sampling::Normal;

    #[test]
    fn partition_is_strict() {
        let mut rng = StdRng::seed_from_u64(1);
        let values = Normal::new(0.0, 500e3).sample_n(&mut rng, 128);
        let g = group_ros(&values, 100e3);
        let assign = g.assignments(128); // panics if not a partition
        assert_eq!(assign.len(), 128);
    }

    #[test]
    fn in_group_pairs_exceed_threshold() {
        let mut rng = StdRng::seed_from_u64(2);
        let values = Normal::new(0.0, 500e3).sample_n(&mut rng, 256);
        let th = 150e3;
        let g = group_ros(&values, th);
        assert!(g.is_valid(&values, th));
    }

    #[test]
    fn members_in_descending_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let values = Normal::new(0.0, 1.0).sample_n(&mut rng, 64);
        let g = group_ros(&values, 0.2);
        for members in &g.groups {
            for w in members.windows(2) {
                assert!(values[w[0]] > values[w[1]]);
            }
        }
    }

    #[test]
    fn zero_threshold_single_group() {
        // With Δf_th = 0 and distinct values, everything fits group 1.
        let values = [3.0, 1.0, 2.0];
        let g = group_ros(&values, 0.0);
        assert_eq!(g.groups.len(), 1);
        assert_eq!(g.groups[0], vec![0, 2, 1]);
    }

    #[test]
    fn huge_threshold_all_singletons() {
        let values = [3.0, 1.0, 2.0];
        let g = group_ros(&values, 100.0);
        assert_eq!(g.groups.len(), 3);
        assert!(g.groups.iter().all(|m| m.len() == 1));
        assert_eq!(g.entropy_bits(), 0.0);
        assert_eq!(g.kendall_bits(), 0);
    }

    #[test]
    fn greedy_prefers_large_groups() {
        // Values 10, 8, 6, 4 with th = 1: all in one group (gaps 2 > 1).
        let g = group_ros(&[10.0, 8.0, 6.0, 4.0], 1.0);
        assert_eq!(g.groups.len(), 1);
        assert!((g.entropy_bits() - (24f64).log2()).abs() < 1e-9);
        assert_eq!(g.kendall_bits(), 6);
    }

    #[test]
    fn assignments_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let values = Normal::new(0.0, 1.0).sample_n(&mut rng, 50);
        let g = group_ros(&values, 0.3);
        let assign = g.assignments(50);
        let g2 = Grouping::from_assignments(&assign);
        // Same partition (member order may differ: re-sort to compare).
        for (a, b) in g.groups.iter().zip(&g2.groups) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn paper_example_entropy_monotone() {
        // Few large groups beat many small ones at equal total size.
        let one_big = Grouping {
            groups: vec![vec![0, 1, 2, 3]],
        };
        let two_small = Grouping {
            groups: vec![vec![0, 1], vec![2, 3]],
        };
        assert!(one_big.entropy_bits() > two_small.entropy_bits());
    }
}
