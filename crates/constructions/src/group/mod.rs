//! The group-based RO PUF (paper Section V, Fig. 4; DATE 2013) and its
//! entropy distiller (DAC 2013).
//!
//! Pipeline: RO array → [`distiller`] (polynomial regression removes
//! systematic variation) → [`grouping`] (Algorithm 2 partitions ROs into
//! reliability groups) → [`kendall`] (one bit per in-group RO pair,
//! Table I) → ECC → [`packing`] (conversion to compact coding) → key.

pub mod distiller;
pub mod grouping;
pub mod kendall;
pub mod packing;
pub mod pipeline;

pub use distiller::Distiller;
pub use grouping::{group_ros, Grouping};
pub use kendall::{group_kendall_bits, group_order};
pub use pipeline::{GroupBasedConfig, GroupBasedHelper, GroupBasedScheme, GROUP_TAG};
