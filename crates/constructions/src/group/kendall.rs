//! Kendall coding of in-group frequency orders (paper Section V-C,
//! Table I).
//!
//! For a group `G`, one bit is generated for every pair of member ROs.
//! Members are indexed *locally* in ascending RO-index order (the fixed
//! labelling A, B, C, … of Table I); bit `(u, v)` with `u < v` is 1 iff
//! member `v` is **faster** than member `u` is *false*… precisely: the
//! bit is 1 iff `v` precedes `u` in the descending-frequency order, i.e.
//! `values[v] > values[u]`. Adjacent-rank flips caused by noise change
//! exactly one Kendall bit, which relaxes the ECC's error-rate budget.

use ropuf_numeric::Permutation;

/// Canonical local labelling of a group: its member RO indices sorted
/// ascending. Table I's A, B, C, D are the members in this order.
pub fn canonical_members(members: &[usize]) -> Vec<usize> {
    let mut m = members.to_vec();
    m.sort_unstable();
    m
}

/// The descending-frequency order of a group as a permutation of its
/// canonical local labels.
///
/// # Panics
///
/// Panics if a member index exceeds `values`.
pub fn group_order(members: &[usize], values: &[f64]) -> Permutation {
    let canon = canonical_members(members);
    let local_values: Vec<f64> = canon.iter().map(|&i| values[i]).collect();
    Permutation::sorting_desc(&local_values)
}

/// Kendall bits of a group under a value map: `|G|(|G|−1)/2` bits in
/// lexicographic local-pair order.
pub fn group_kendall_bits(members: &[usize], values: &[f64]) -> Vec<bool> {
    if members.len() < 2 {
        return Vec::new();
    }
    group_order(members, values).kendall_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_order_all_zero() {
        // Members 3,7,9 with descending values in label order.
        let mut values = vec![0.0; 10];
        values[3] = 30.0;
        values[7] = 20.0;
        values[9] = 10.0;
        let bits = group_kendall_bits(&[9, 3, 7], &values);
        assert_eq!(bits, vec![false, false, false]);
    }

    #[test]
    fn full_reversal_all_one() {
        let mut values = vec![0.0; 4];
        values[0] = 1.0;
        values[1] = 2.0;
        values[2] = 3.0;
        values[3] = 4.0;
        let bits = group_kendall_bits(&[0, 1, 2, 3], &values);
        assert!(bits.iter().all(|&b| b));
    }

    #[test]
    fn matches_table1_example() {
        // Order CABD over labels A,B,C,D (members 0..4):
        // C fastest, then A, B, D.
        let values = [3.0, 2.0, 4.0, 1.0];
        let order = group_order(&[0, 1, 2, 3], &values);
        assert_eq!(order.to_string(), "CABD");
        let bits: String = group_kendall_bits(&[0, 1, 2, 3], &values)
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        assert_eq!(bits, "010100"); // Table I row CABD
    }

    #[test]
    fn singleton_and_pair_groups() {
        assert!(group_kendall_bits(&[5], &[0.0; 6]).is_empty());
        let values = [1.0, 2.0];
        assert_eq!(group_kendall_bits(&[0, 1], &values), vec![true]);
        assert_eq!(group_kendall_bits(&[1, 0], &values), vec![true]);
    }

    #[test]
    fn member_order_is_canonicalized() {
        // Bits must not depend on the order members are listed.
        let values = [5.0, 1.0, 3.0, 2.0];
        let a = group_kendall_bits(&[0, 1, 2, 3], &values);
        let b = group_kendall_bits(&[3, 0, 2, 1], &values);
        assert_eq!(a, b);
    }

    #[test]
    fn adjacent_swap_flips_one_bit() {
        // BACD vs BCAD (paper's example flip) differ in one Kendall bit.
        let bacd = [2.0, 3.0, 1.5, 1.0]; // B > A > C > D
        let bcad = [1.5, 3.0, 2.0, 1.0]; // B > C > A > D
        let ba = group_kendall_bits(&[0, 1, 2, 3], &bacd);
        let bc = group_kendall_bits(&[0, 1, 2, 3], &bcad);
        let diff = ba.iter().zip(&bc).filter(|(x, y)| x != y).count();
        assert_eq!(diff, 1);
    }
}
