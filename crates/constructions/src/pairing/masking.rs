//! 1-out-of-k masking (paper Section IV-B).
//!
//! A fixed pair set (here: the disjoint neighbor chain) is partitioned into
//! groups of `k` pairs. At enrollment, the pair maximizing `|Δf|` within
//! each group is selected — favoring reliability — and the selected indices
//! are stored as public helper data. `k` trades reliability against
//! efficiency.

use super::neighbor::RoPair;

/// Groups a fixed pair list into consecutive runs of `k`; a final partial
/// group is dropped (it cannot offer the full reliability margin).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn mask_groups(pairs: &[RoPair], k: usize) -> Vec<&[RoPair]> {
    assert!(k > 0, "k must be positive");
    pairs.chunks_exact(k).collect()
}

/// Enrollment-time selection: for each group of `k` pairs, the in-group
/// index (`0..k`) of the pair with the largest `|Δf|`.
///
/// # Panics
///
/// Panics if `k == 0` or a pair index exceeds `values`.
pub fn select_max_delta(pairs: &[RoPair], k: usize, values: &[f64]) -> Vec<usize> {
    mask_groups(pairs, k)
        .iter()
        .map(|group| {
            let mut best = 0;
            let mut best_delta = f64::MIN;
            for (idx, &(a, b)) in group.iter().enumerate() {
                let d = (values[a] - values[b]).abs();
                if d > best_delta {
                    best_delta = d;
                    best = idx;
                }
            }
            best
        })
        .collect()
}

/// Resolves stored selections into the concrete pair per group.
///
/// Returns `None` when a selection index is `≥ k` or the selection count
/// does not match the group count — the parse-time sanity condition.
pub fn selected_pairs(pairs: &[RoPair], k: usize, selections: &[usize]) -> Option<Vec<RoPair>> {
    let groups = mask_groups(pairs, k);
    if selections.len() != groups.len() {
        return None;
    }
    selections
        .iter()
        .zip(groups)
        .map(|(&s, g)| g.get(s).copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs6() -> Vec<RoPair> {
        vec![(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11)]
    }

    #[test]
    fn groups_are_consecutive() {
        let pairs = pairs6();
        let g = mask_groups(&pairs, 3);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0], &pairs[..3]);
    }

    #[test]
    fn partial_group_dropped() {
        let pairs = pairs6();
        let g = mask_groups(&pairs, 4);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn selects_largest_gap() {
        let pairs = pairs6();
        // |Δ| per pair: 1, 9, 2 | 1, 1, 30
        let values = [0.0, 1.0, 10.0, 1.0, 3.0, 1.0, 0.0, 1.0, 5.0, 4.0, 31.0, 1.0];
        let sel = select_max_delta(&pairs, 3, &values);
        assert_eq!(sel, vec![1, 2]);
    }

    #[test]
    fn resolve_selection_roundtrip() {
        let pairs = pairs6();
        let sel = vec![1usize, 2];
        let resolved = selected_pairs(&pairs, 3, &sel).unwrap();
        assert_eq!(resolved, vec![(2, 3), (10, 11)]);
    }

    #[test]
    fn out_of_range_selection_rejected() {
        let pairs = pairs6();
        assert!(selected_pairs(&pairs, 3, &[3, 0]).is_none());
        assert!(selected_pairs(&pairs, 3, &[0]).is_none());
    }
}
