//! Chains of neighboring ROs (paper Section IV-A).
//!
//! Pairing neighboring ROs reduces the impact of spatial correlation. Two
//! variants over the serpentine RO chain:
//!
//! * **disjoint**: pairs `(chain[0], chain[1]), (chain[2], chain[3]), …` —
//!   `⌊N/2⌋` independent bits;
//! * **overlapping**: pairs `(chain[i], chain[i+1])` for every `i` —
//!   up to `N − 1` bits which share ROs (the case of the paper's Fig. 6c).

use ropuf_sim::ArrayDims;

/// An ordered RO pair `(a, b)`; the response bit is `f_a > f_b`.
pub type RoPair = (usize, usize);

/// Disjoint neighbor pairs along the serpentine chain: `⌊N/2⌋` pairs, no
/// shared ROs.
///
/// # Examples
///
/// ```
/// use ropuf_constructions::pairing::neighbor::disjoint_chain_pairs;
/// use ropuf_sim::ArrayDims;
///
/// let pairs = disjoint_chain_pairs(ArrayDims::new(4, 2));
/// assert_eq!(pairs.len(), 4);
/// ```
pub fn disjoint_chain_pairs(dims: ArrayDims) -> Vec<RoPair> {
    let chain = dims.serpentine();
    chain.chunks_exact(2).map(|c| (c[0], c[1])).collect()
}

/// Overlapping neighbor pairs along the serpentine chain: `N − 1` pairs,
/// each RO (except the chain ends) shared by two pairs.
pub fn overlapping_chain_pairs(dims: ArrayDims) -> Vec<RoPair> {
    let chain = dims.serpentine();
    chain.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Response bits of a pair list over a measured frequency (or residual)
/// vector: bit `p` is `values[a] > values[b]`. Exact ties (possible after
/// counter quantization, paper §III-B) resolve to `false`.
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn pair_bits(pairs: &[RoPair], values: &[f64]) -> Vec<bool> {
    pairs.iter().map(|&(a, b)| values[a] > values[b]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_pairs_cover_each_ro_once() {
        let dims = ArrayDims::new(6, 4);
        let pairs = disjoint_chain_pairs(dims);
        assert_eq!(pairs.len(), 12);
        let mut seen = vec![false; dims.len()];
        for &(a, b) in &pairs {
            assert!(!seen[a] && !seen[b], "RO reused");
            seen[a] = true;
            seen[b] = true;
        }
    }

    #[test]
    fn disjoint_pairs_are_neighbors() {
        let dims = ArrayDims::new(5, 3);
        for (a, b) in disjoint_chain_pairs(dims) {
            assert!(dims.neighbors4(a).contains(&b));
        }
    }

    #[test]
    fn overlapping_pairs_count_and_sharing() {
        let dims = ArrayDims::new(4, 3);
        let pairs = overlapping_chain_pairs(dims);
        assert_eq!(pairs.len(), dims.len() - 1);
        // Consecutive pairs share one RO.
        for w in pairs.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn odd_chain_drops_last() {
        let dims = ArrayDims::new(3, 3); // 9 ROs
        assert_eq!(disjoint_chain_pairs(dims).len(), 4);
    }

    #[test]
    fn pair_bits_compare_values() {
        let pairs = vec![(0, 1), (2, 3)];
        let values = [5.0, 3.0, 1.0, 2.0];
        assert_eq!(pair_bits(&pairs, &values), vec![true, false]);
    }

    #[test]
    fn tie_resolves_to_false() {
        assert_eq!(pair_bits(&[(0, 1)], &[2.0, 2.0]), vec![false]);
    }
}
