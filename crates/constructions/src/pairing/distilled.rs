//! Entropy distiller combined with RO pairing (paper Section VI-D;
//! DAC 2013).
//!
//! "Employment with the pair selection methods of section IV is a
//! possibility as well" — this scheme runs a pairing source (disjoint
//! chain, overlapping chain or 1-out-of-k masking) on the *residuals*
//! of the entropy distiller instead of raw frequencies. The helper data
//! carries the polynomial coefficients (and the masking selections),
//! which is exactly what the Fig. 6b/6c attacks rewrite.

use rand::RngCore;
use ropuf_numeric::polyfit::coefficient_count;
use ropuf_numeric::BitVec;
use ropuf_sim::{Environment, RoArray};

use crate::ecc_helper::ParityHelper;
use crate::group::distiller::Distiller;
use crate::pairing::masking::{select_max_delta, selected_pairs};
use crate::pairing::neighbor::{disjoint_chain_pairs, overlapping_chain_pairs, pair_bits, RoPair};
use crate::scheme::{EnrollError, Enrollment, HelperDataScheme, ReconstructError, SanityPolicy};
use crate::wire::{WireError, WireReader, WireWriter};

/// Wire-format scheme tag for distilled-pairing helper data.
pub const DISTILLED_TAG: u8 = 0x44; // 'D'

/// Which pair source feeds on the distiller residuals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairSource {
    /// Disjoint chain of neighbors (paper Fig. 6b's underlying pair set).
    DisjointChain,
    /// Overlapping chain of neighbors (paper Fig. 6c).
    OverlappingChain,
    /// 1-out-of-k masking over the disjoint chain (paper Fig. 6b).
    OneOutOfK {
        /// Group size `k`.
        k: usize,
    },
}

/// Configuration of the [`DistilledPairingScheme`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistilledConfig {
    /// Distiller polynomial degree.
    pub degree: usize,
    /// Averaged measurements per RO at enrollment.
    pub enroll_avg: usize,
    /// Per-block ECC correction capability.
    pub ecc_t: usize,
    /// Pair source.
    pub source: PairSource,
    /// Helper-data parsing strictness.
    pub sanity: SanityPolicy,
}

impl Default for DistilledConfig {
    fn default() -> Self {
        Self {
            degree: 2,
            enroll_avg: 16,
            // Chain pairs carry no reliability selection, so temperature
            // drift flips marginal comparisons; the code must absorb them.
            ecc_t: 6,
            source: PairSource::DisjointChain,
            sanity: SanityPolicy::Lenient,
        }
    }
}

/// Parsed distilled-pairing helper data.
#[derive(Debug, Clone, PartialEq)]
pub struct DistilledHelper {
    /// Array width.
    pub cols: u16,
    /// Array height.
    pub rows: u16,
    /// Distiller degree.
    pub degree: u8,
    /// Distiller coefficients.
    pub coefficients: Vec<f64>,
    /// 1-out-of-k selections (empty for chain sources).
    pub selections: Vec<u16>,
    /// ECC redundancy over the response bits.
    pub parity: BitVec,
}

impl DistilledHelper {
    /// Serializes to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new(DISTILLED_TAG);
        w.put_u16(self.cols);
        w.put_u16(self.rows);
        w.put_u8(self.degree);
        w.put_f64_list(&self.coefficients);
        w.put_u16_list(&self.selections);
        w.put_bits(&self.parity);
        w.into_bytes()
    }

    /// Parses from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input or an inconsistent
    /// coefficient count.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes, DISTILLED_TAG)?;
        let cols = r.take_u16()?;
        let rows = r.take_u16()?;
        let degree = r.take_u8()?;
        if degree > 8 {
            return Err(WireError::Semantic {
                what: "distiller degree too large",
            });
        }
        let coefficients = r.take_f64_list()?;
        if coefficients.len() != coefficient_count(degree as usize) {
            return Err(WireError::BadLength {
                what: "coefficient list",
                value: coefficients.len() as u64,
            });
        }
        let selections = r.take_u16_list()?;
        let parity = r.take_bits()?;
        r.finish()?;
        Ok(Self {
            cols,
            rows,
            degree,
            coefficients,
            selections,
            parity,
        })
    }
}

/// Distiller + pairing key generator.
#[derive(Debug, Clone)]
pub struct DistilledPairingScheme {
    config: DistilledConfig,
}

impl DistilledPairingScheme {
    /// Creates the scheme.
    pub fn new(config: DistilledConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DistilledConfig {
        &self.config
    }

    /// Resolves the concrete pair list for an array given stored
    /// selections.
    ///
    /// # Errors
    ///
    /// Returns a semantic [`WireError`] when selections are inconsistent
    /// with the source.
    pub fn resolve_pairs(
        &self,
        array: &RoArray,
        selections: &[u16],
    ) -> Result<Vec<RoPair>, WireError> {
        let dims = array.dims();
        match self.config.source {
            PairSource::DisjointChain => {
                if !selections.is_empty() {
                    return Err(WireError::Semantic {
                        what: "unexpected selections for chain source",
                    });
                }
                Ok(disjoint_chain_pairs(dims))
            }
            PairSource::OverlappingChain => {
                if !selections.is_empty() {
                    return Err(WireError::Semantic {
                        what: "unexpected selections for chain source",
                    });
                }
                Ok(overlapping_chain_pairs(dims))
            }
            PairSource::OneOutOfK { k } => {
                let base = disjoint_chain_pairs(dims);
                let sel: Vec<usize> = selections.iter().map(|&s| s as usize).collect();
                selected_pairs(&base, k, &sel).ok_or(WireError::Semantic {
                    what: "masking selections out of range",
                })
            }
        }
    }
}

impl HelperDataScheme for DistilledPairingScheme {
    fn name(&self) -> &'static str {
        "distilled-pairing"
    }

    fn clone_box(&self) -> Box<dyn HelperDataScheme> {
        Box::new(self.clone())
    }

    fn enroll(&self, array: &RoArray, rng: &mut dyn RngCore) -> Result<Enrollment, EnrollError> {
        let dims = array.dims();
        let freqs = array.measure_all_averaged(Environment::nominal(), self.config.enroll_avg, rng);
        let distiller = Distiller::new(self.config.degree);
        let poly = distiller
            .fit(dims, &freqs)
            .map_err(|e| EnrollError::Distiller(e.to_string()))?;
        let residuals = Distiller::subtract(dims, &freqs, &poly);
        let selections: Vec<u16> = match self.config.source {
            PairSource::OneOutOfK { k } => {
                let base = disjoint_chain_pairs(dims);
                select_max_delta(&base, k, &residuals)
                    .into_iter()
                    .map(|s| s as u16)
                    .collect()
            }
            _ => Vec::new(),
        };
        let pairs = self
            .resolve_pairs(array, &selections)
            .expect("enrollment selections are consistent");
        if pairs.len() < 2 {
            return Err(EnrollError::InsufficientEntropy {
                got: pairs.len(),
                needed: 2,
            });
        }
        let key = BitVec::from_bools(pair_bits(&pairs, &residuals));
        let ecc = ParityHelper::new(key.len(), self.config.ecc_t).map_err(EnrollError::Ecc)?;
        let parity = ecc.parity(&key);
        let helper = DistilledHelper {
            cols: dims.cols() as u16,
            rows: dims.rows() as u16,
            degree: self.config.degree as u8,
            coefficients: poly.coefficients().to_vec(),
            selections,
            parity,
        };
        Ok(Enrollment {
            key,
            helper: helper.to_bytes(),
        })
    }

    fn reconstruct(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
    ) -> Result<BitVec, ReconstructError> {
        self.reconstruct_with_scratch(array, helper, env, rng, &mut Vec::new())
    }

    fn reconstruct_with_scratch(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
        scratch: &mut Vec<f64>,
    ) -> Result<BitVec, ReconstructError> {
        let dims = array.dims();
        let parsed = DistilledHelper::from_bytes(helper)?;
        if (parsed.cols as usize, parsed.rows as usize) != (dims.cols(), dims.rows()) {
            return Err(WireError::Semantic {
                what: "array dimension mismatch",
            }
            .into());
        }
        let pairs = self.resolve_pairs(array, &parsed.selections)?;
        array.measure_all_into(env, rng, scratch);
        let freqs: &[f64] = scratch;
        let poly = ropuf_numeric::polyfit::Poly2d::from_coefficients(
            parsed.degree as usize,
            parsed.coefficients.clone(),
        )
        .map_err(|_| WireError::Semantic {
            what: "inconsistent coefficients",
        })?;
        let residuals = Distiller::subtract(dims, &freqs, &poly);
        let bits = BitVec::from_bools(pair_bits(&pairs, &residuals));
        let ecc = ParityHelper::new(bits.len(), self.config.ecc_t)
            .map_err(|_| ReconstructError::EccFailure)?;
        ecc.correct(&bits, &parsed.parity)
            .map_err(|_| ReconstructError::EccFailure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn array(seed: u64) -> RoArray {
        let mut rng = StdRng::seed_from_u64(seed);
        RoArrayBuilder::new(ArrayDims::new(10, 4)).build(&mut rng)
    }

    fn roundtrip(source: PairSource, seed: u64) {
        let a = array(seed);
        let scheme = DistilledPairingScheme::new(DistilledConfig {
            source,
            ..DistilledConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        for trial in 0..5 {
            let k = scheme
                .reconstruct(&a, &e.helper, Environment::nominal(), &mut rng)
                .unwrap_or_else(|err| panic!("{source:?} trial {trial}: {err}"));
            assert_eq!(k, e.key, "{source:?} trial {trial}");
        }
    }

    #[test]
    fn roundtrip_disjoint_chain() {
        roundtrip(PairSource::DisjointChain, 1);
    }

    #[test]
    fn roundtrip_overlapping_chain() {
        roundtrip(PairSource::OverlappingChain, 3);
    }

    #[test]
    fn roundtrip_one_out_of_k() {
        roundtrip(PairSource::OneOutOfK { k: 5 }, 5);
    }

    #[test]
    fn key_lengths_match_source() {
        let a = array(7);
        let mut rng = StdRng::seed_from_u64(8);
        let n = a.len();
        let mut mk = |source| {
            let scheme = DistilledPairingScheme::new(DistilledConfig {
                source,
                ..DistilledConfig::default()
            });
            scheme.enroll(&a, &mut rng).unwrap().key.len()
        };
        assert_eq!(mk(PairSource::DisjointChain), n / 2);
        assert_eq!(mk(PairSource::OverlappingChain), n - 1);
        assert_eq!(mk(PairSource::OneOutOfK { k: 5 }), n / 2 / 5);
    }

    #[test]
    fn masking_prefers_reliable_pairs() {
        // Selected pairs should have larger |Δresidual| than group average.
        let a = array(9);
        let scheme = DistilledPairingScheme::new(DistilledConfig {
            source: PairSource::OneOutOfK { k: 5 },
            ..DistilledConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(10);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let parsed = DistilledHelper::from_bytes(&e.helper).unwrap();
        assert_eq!(parsed.selections.len(), 4); // 20 pairs / k=5
        assert!(parsed.selections.iter().all(|&s| s < 5));
    }

    #[test]
    fn selections_for_chain_source_rejected() {
        let a = array(11);
        let scheme = DistilledPairingScheme::new(DistilledConfig::default());
        let mut rng = StdRng::seed_from_u64(12);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let mut parsed = DistilledHelper::from_bytes(&e.helper).unwrap();
        parsed.selections = vec![0];
        let r = scheme.reconstruct(&a, &parsed.to_bytes(), Environment::nominal(), &mut rng);
        assert!(matches!(r, Err(ReconstructError::Helper(_))));
    }

    #[test]
    fn attacker_rewrites_selection_changes_bits() {
        // Rewriting a masking selection re-points a key bit at a different
        // pair — accepted by the format, and the basis of the Fig. 6b
        // attack.
        let a = array(13);
        let scheme = DistilledPairingScheme::new(DistilledConfig {
            source: PairSource::OneOutOfK { k: 5 },
            ecc_t: 1,
            ..DistilledConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(14);
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let mut parsed = DistilledHelper::from_bytes(&e.helper).unwrap();
        parsed.selections[0] = (parsed.selections[0] + 1) % 5;
        let r = scheme.reconstruct(&a, &parsed.to_bytes(), Environment::nominal(), &mut rng);
        assert!(r.is_ok() || matches!(r, Err(ReconstructError::EccFailure)));
    }
}
