//! The sequential pairing algorithm "LISA" (paper Section IV-C,
//! Algorithm 1; originally HOST 2010).
//!
//! Enrollment sorts the RO frequencies in descending order and pairs rank
//! `i` (top half) with rank `j` (bottom half) whenever their discrepancy
//! exceeds `Δf_th`, producing up to `⌊N/2⌋` disjoint pairs. Pair indices
//! are stored in public helper NVM; the response bit of a stored pair
//! `(a, b)` is `f_a > f_b`.
//!
//! Two storage-format subtleties called out by the paper (§VII-C) are
//! modelled explicitly:
//!
//! * **order randomization** — storing a pair's indices sorted by
//!   frequency leaks the full key outright
//!   ([`LisaConfig::randomize_order`]);
//! * **RO re-use** — nothing in the format prevents an attacker from
//!   writing helper data that re-uses ROs across pairs unless a sanity
//!   check forbids it ([`SanityPolicy::Strict`]).

use rand::{Rng, RngCore};
use ropuf_numeric::BitVec;
use ropuf_sim::{Environment, RoArray};

use crate::ecc_helper::ParityHelper;
use crate::scheme::{EnrollError, Enrollment, HelperDataScheme, ReconstructError, SanityPolicy};
use crate::wire::{WireError, WireReader, WireWriter};

/// Wire-format scheme tag for LISA helper data.
pub const LISA_TAG: u8 = 0x4C; // 'L'

/// Configuration of the [`LisaScheme`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LisaConfig {
    /// Frequency discrepancy threshold `Δf_th` in Hz.
    pub delta_f_th: f64,
    /// Number of averaged measurements per RO at enrollment.
    pub enroll_avg: usize,
    /// Per-block ECC correction capability `t`.
    pub ecc_t: usize,
    /// Store each pair's indices in random order (secure practice). With
    /// `false`, indices are stored higher-frequency-first, leaking every
    /// response bit directly — the paper's §VII-C warning.
    pub randomize_order: bool,
    /// Helper-data parsing strictness.
    pub sanity: SanityPolicy,
}

impl Default for LisaConfig {
    fn default() -> Self {
        Self {
            delta_f_th: 200.0e3,
            enroll_avg: 16,
            ecc_t: 3,
            randomize_order: true,
            sanity: SanityPolicy::Lenient,
        }
    }
}

/// The LISA sequential-pairing key generator.
#[derive(Debug, Clone)]
pub struct LisaScheme {
    config: LisaConfig,
}

/// Parsed LISA helper data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LisaHelper {
    /// Number of ROs the helper data was generated for.
    pub array_len: u16,
    /// Stored RO pairs.
    pub pairs: Vec<(u16, u16)>,
    /// ECC parity bits for the response vector.
    pub parity: BitVec,
}

impl LisaHelper {
    /// Serializes to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new(LISA_TAG);
        w.put_u16(self.array_len);
        let flat: Vec<u16> = self.pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        w.put_u16_list(&flat);
        w.put_bits(&self.parity);
        w.into_bytes()
    }

    /// Parses from the wire format, applying structural checks always and
    /// semantic checks per `sanity`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input; with
    /// [`SanityPolicy::Strict`] additionally when a RO index repeats
    /// across pairs.
    pub fn from_bytes(bytes: &[u8], sanity: SanityPolicy) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes, LISA_TAG)?;
        let array_len = r.take_u16()?;
        let flat = r.take_u16_list()?;
        if flat.len() % 2 != 0 {
            return Err(WireError::BadLength {
                what: "pair list",
                value: flat.len() as u64,
            });
        }
        let pairs: Vec<(u16, u16)> = flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        if pairs.is_empty() {
            return Err(WireError::Semantic {
                what: "empty pair list",
            });
        }
        for &(a, b) in &pairs {
            if a >= array_len || b >= array_len {
                return Err(WireError::Semantic {
                    what: "RO index out of range",
                });
            }
            if a == b {
                return Err(WireError::Semantic {
                    what: "pair of identical ROs",
                });
            }
        }
        if sanity == SanityPolicy::Strict {
            let mut used = vec![false; array_len as usize];
            for &(a, b) in &pairs {
                if used[a as usize] || used[b as usize] {
                    return Err(WireError::Semantic {
                        what: "RO re-used across pairs",
                    });
                }
                used[a as usize] = true;
                used[b as usize] = true;
            }
        }
        let parity = r.take_bits()?;
        r.finish()?;
        Ok(Self {
            array_len,
            pairs,
            parity,
        })
    }
}

impl LisaScheme {
    /// Creates the scheme.
    pub fn new(config: LisaConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &LisaConfig {
        &self.config
    }

    /// Algorithm 1 (simplified, as printed in the paper): pairs rank `i`
    /// against ranks `⌈N/2⌉+1 … N` of the descending frequency order,
    /// advancing `i` on every successful pairing.
    pub fn sequential_pairing(freqs: &[f64], delta_f_th: f64) -> Vec<(usize, usize)> {
        let n = freqs.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            freqs[b]
                .partial_cmp(&freqs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut pairs = Vec::new();
        let mut i = 0usize;
        for j in n.div_ceil(2)..n {
            if i >= j {
                break;
            }
            if freqs[order[i]] - freqs[order[j]] > delta_f_th {
                pairs.push((order[i], order[j]));
                i += 1;
            }
        }
        pairs
    }

    fn ecc(&self, response_len: usize) -> Result<ParityHelper, EnrollError> {
        ParityHelper::new(response_len, self.config.ecc_t).map_err(EnrollError::Ecc)
    }
}

impl HelperDataScheme for LisaScheme {
    fn name(&self) -> &'static str {
        "lisa"
    }

    fn clone_box(&self) -> Box<dyn HelperDataScheme> {
        Box::new(self.clone())
    }

    fn enroll(&self, array: &RoArray, rng: &mut dyn RngCore) -> Result<Enrollment, EnrollError> {
        let env = Environment::nominal();
        let freqs = array.measure_all_averaged(env, self.config.enroll_avg, rng);
        let raw_pairs = Self::sequential_pairing(&freqs, self.config.delta_f_th);
        if raw_pairs.len() < 2 {
            return Err(EnrollError::InsufficientEntropy {
                got: raw_pairs.len(),
                needed: 2,
            });
        }
        // Storage order: randomized (secure) or higher-frequency-first
        // (leaky; kept to demonstrate the paper's §VII-C warning).
        let mut pairs: Vec<(u16, u16)> = Vec::with_capacity(raw_pairs.len());
        let mut response = BitVec::new();
        for (a, b) in raw_pairs {
            let swap = self.config.randomize_order && rng.random::<bool>();
            let (first, second) = if swap { (b, a) } else { (a, b) };
            pairs.push((first as u16, second as u16));
            response.push(freqs[first] > freqs[second]);
        }
        let ecc = self.ecc(response.len())?;
        let parity = ecc.parity(&response);
        let helper = LisaHelper {
            array_len: array.len() as u16,
            pairs,
            parity,
        };
        Ok(Enrollment {
            key: response,
            helper: helper.to_bytes(),
        })
    }

    fn reconstruct(
        &self,
        array: &RoArray,
        helper: &[u8],
        env: Environment,
        rng: &mut dyn RngCore,
    ) -> Result<BitVec, ReconstructError> {
        let parsed = LisaHelper::from_bytes(helper, self.config.sanity)?;
        if parsed.array_len as usize != array.len() {
            return Err(WireError::Semantic {
                what: "array length mismatch",
            }
            .into());
        }
        let mut response = BitVec::new();
        for &(a, b) in &parsed.pairs {
            let fa = array.measure(a as usize, env, rng);
            let fb = array.measure(b as usize, env, rng);
            response.push(fa > fb);
        }
        let ecc = ParityHelper::new(response.len(), self.config.ecc_t)
            .map_err(|_| ReconstructError::EccFailure)?;
        ecc.correct(&response, &parsed.parity)
            .map_err(|_| ReconstructError::EccFailure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn device(seed: u64) -> RoArray {
        let mut rng = StdRng::seed_from_u64(seed);
        RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng)
    }

    #[test]
    fn algorithm1_pairs_exceed_threshold_and_are_disjoint() {
        let array = device(1);
        let mut rng = StdRng::seed_from_u64(2);
        let freqs = array.measure_all_averaged(Environment::nominal(), 16, &mut rng);
        let th = 200e3;
        let pairs = LisaScheme::sequential_pairing(&freqs, th);
        assert!(pairs.len() > 10, "expected many pairs, got {}", pairs.len());
        let mut used = vec![false; array.len()];
        for &(a, b) in &pairs {
            assert!(freqs[a] - freqs[b] > th, "threshold violated");
            assert!(!used[a] && !used[b], "RO reused");
            used[a] = true;
            used[b] = true;
        }
        assert!(pairs.len() <= array.len() / 2);
    }

    #[test]
    fn algorithm1_huge_threshold_yields_no_pairs() {
        let array = device(3);
        let mut rng = StdRng::seed_from_u64(4);
        let freqs = array.measure_all_averaged(Environment::nominal(), 16, &mut rng);
        assert!(LisaScheme::sequential_pairing(&freqs, 1e12).is_empty());
    }

    #[test]
    fn enroll_reconstruct_roundtrip() {
        let array = device(5);
        let scheme = LisaScheme::new(LisaConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let e = scheme.enroll(&array, &mut rng).unwrap();
        for _ in 0..10 {
            let k = scheme
                .reconstruct(&array, &e.helper, Environment::nominal(), &mut rng)
                .unwrap();
            assert_eq!(k, e.key);
        }
    }

    #[test]
    fn reconstruct_across_environment() {
        let array = device(7);
        let scheme = LisaScheme::new(LisaConfig::default());
        let mut rng = StdRng::seed_from_u64(8);
        let e = scheme.enroll(&array, &mut rng).unwrap();
        // Moderate temperature shift: threshold pairs keep their sign.
        let k = scheme
            .reconstruct(
                &array,
                &e.helper,
                Environment::at_temperature(45.0),
                &mut rng,
            )
            .unwrap();
        assert_eq!(k, e.key);
    }

    #[test]
    fn sorted_storage_leaks_full_key() {
        // Paper §VII-C: without randomized index order, every response bit
        // is 1 by construction — the key is readable from public data.
        let array = device(9);
        let scheme = LisaScheme::new(LisaConfig {
            randomize_order: false,
            ..LisaConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(10);
        let e = scheme.enroll(&array, &mut rng).unwrap();
        assert_eq!(e.key.count_ones(), e.key.len(), "all bits must be 1");
    }

    #[test]
    fn randomized_storage_has_both_bit_values() {
        let array = device(11);
        let scheme = LisaScheme::new(LisaConfig::default());
        let mut rng = StdRng::seed_from_u64(12);
        let e = scheme.enroll(&array, &mut rng).unwrap();
        let ones = e.key.count_ones();
        assert!(
            ones > 0 && ones < e.key.len(),
            "ones = {ones}/{}",
            e.key.len()
        );
    }

    #[test]
    fn helper_roundtrip_and_sanity() {
        let h = LisaHelper {
            array_len: 8,
            pairs: vec![(0, 5), (2, 7)],
            parity: BitVec::from_bools([true, false, true]),
        };
        let bytes = h.to_bytes();
        let parsed = LisaHelper::from_bytes(&bytes, SanityPolicy::Lenient).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn out_of_range_index_rejected_even_lenient() {
        let h = LisaHelper {
            array_len: 4,
            pairs: vec![(0, 9)],
            parity: BitVec::zeros(4),
        };
        assert!(LisaHelper::from_bytes(&h.to_bytes(), SanityPolicy::Lenient).is_err());
    }

    #[test]
    fn strict_sanity_rejects_ro_reuse_lenient_accepts() {
        let h = LisaHelper {
            array_len: 8,
            pairs: vec![(0, 1), (1, 2)],
            parity: BitVec::zeros(4),
        };
        let bytes = h.to_bytes();
        assert!(LisaHelper::from_bytes(&bytes, SanityPolicy::Lenient).is_ok());
        assert!(LisaHelper::from_bytes(&bytes, SanityPolicy::Strict).is_err());
    }

    #[test]
    fn swapping_two_pairs_in_helper_swaps_bits() {
        // The attack primitive of Section VI-A: exchanging the positions of
        // two pairs permutes the corresponding response bits.
        let array = device(13);
        let scheme = LisaScheme::new(LisaConfig {
            ecc_t: 3,
            ..LisaConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(14);
        let e = scheme.enroll(&array, &mut rng).unwrap();
        let mut parsed = LisaHelper::from_bytes(&e.helper, SanityPolicy::Lenient).unwrap();
        // Find two pairs with equal bits: swapping them leaves the key
        // unchanged (H0 of the attack).
        let (mut i0, mut i1) = (usize::MAX, usize::MAX);
        'outer: for i in 0..e.key.len() {
            for j in i + 1..e.key.len() {
                if e.key.get(i) == e.key.get(j) {
                    i0 = i;
                    i1 = j;
                    break 'outer;
                }
            }
        }
        parsed.pairs.swap(i0, i1);
        let k = scheme
            .reconstruct(&array, &parsed.to_bytes(), Environment::nominal(), &mut rng)
            .unwrap();
        assert_eq!(k, e.key, "equal-bit swap must not change the key");
    }

    #[test]
    fn truncated_helper_is_graceful_error() {
        let array = device(15);
        let scheme = LisaScheme::new(LisaConfig::default());
        let mut rng = StdRng::seed_from_u64(16);
        let e = scheme.enroll(&array, &mut rng).unwrap();
        for cut in [0usize, 1, 3, 10] {
            let cut = cut.min(e.helper.len());
            let r = scheme.reconstruct(&array, &e.helper[..cut], Environment::nominal(), &mut rng);
            assert!(matches!(r, Err(ReconstructError::Helper(_))));
        }
    }
}
