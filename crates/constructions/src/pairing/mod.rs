//! RO pair-selection methods (paper Section IV).
//!
//! * [`neighbor`] — chains of neighboring ROs (IV-A);
//! * [`masking`] — 1-out-of-k masking on top of a fixed pair set (IV-B);
//! * [`lisa`] — the sequential pairing algorithm (IV-C, Algorithm 1);
//! * [`distilled`] — any of the above pair sources behind an entropy
//!   distiller (the DAC 2013 combination attacked in Section VI-D).

pub mod distilled;
pub mod lisa;
pub mod masking;
pub mod neighbor;
