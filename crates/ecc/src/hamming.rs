//! Single-error-correcting Hamming codes `[2^r − 1, 2^r − 1 − r, 3]`.
//!
//! Implemented with the classic syndrome construction: parity bit `p`
//! covers all positions whose (1-based) index has bit `p` set; the syndrome
//! directly names the error position.

use ropuf_numeric::BitVec;

use crate::code::{BinaryCode, DecodeError, Decoded};

/// A Hamming code with `r` parity bits.
///
/// # Examples
///
/// ```
/// use ropuf_ecc::{BinaryCode, HammingCode};
/// use ropuf_numeric::BitVec;
///
/// let code = HammingCode::new(3).unwrap(); // [7, 4]
/// let msg = BitVec::from_bools([true, false, true, true]);
/// let mut cw = code.encode(&msg);
/// cw.flip(5);
/// assert_eq!(code.decode(&cw).unwrap().message, msg);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HammingCode {
    r: u32,
}

/// Error constructing a [`HammingCode`] with out-of-range `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidParityBitsError {
    /// The rejected parity-bit count.
    pub r: u32,
}

impl std::fmt::Display for InvalidParityBitsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hamming parity bits must be in 2..=16, got {}", self.r)
    }
}

impl std::error::Error for InvalidParityBitsError {}

impl HammingCode {
    /// Creates a Hamming code with `r` parity bits (`2 ≤ r ≤ 16`).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParityBitsError`] for `r` out of range.
    pub fn new(r: u32) -> Result<Self, InvalidParityBitsError> {
        if !(2..=16).contains(&r) {
            return Err(InvalidParityBitsError { r });
        }
        Ok(Self { r })
    }
}

impl BinaryCode for HammingCode {
    fn n(&self) -> usize {
        (1usize << self.r) - 1
    }

    fn k(&self) -> usize {
        self.n() - self.r as usize
    }

    fn t(&self) -> usize {
        1
    }

    fn encode(&self, msg: &BitVec) -> BitVec {
        assert_eq!(msg.len(), self.k(), "message length must equal k");
        let n = self.n();
        let mut cw = BitVec::zeros(n);
        // Data goes to positions (1-based) that are not powers of two.
        let mut mi = 0;
        for pos in 1..=n {
            if !pos.is_power_of_two() {
                cw.set(pos - 1, msg.get(mi));
                mi += 1;
            }
        }
        // Parity bit at position 2^p makes the XOR over covered positions 0.
        for p in 0..self.r {
            let pp = 1usize << p;
            let mut parity = false;
            for pos in 1..=n {
                if pos != pp && pos & pp != 0 && cw.get(pos - 1) {
                    parity = !parity;
                }
            }
            cw.set(pp - 1, parity);
        }
        cw
    }

    fn decode(&self, word: &BitVec) -> Result<Decoded, DecodeError> {
        let n = self.n();
        if word.len() != n {
            return Err(DecodeError::LengthMismatch {
                expected: n,
                got: word.len(),
            });
        }
        let mut syndrome = 0usize;
        for pos in 1..=n {
            if word.get(pos - 1) {
                syndrome ^= pos;
            }
        }
        let mut corrected_word = word.clone();
        let corrected = if syndrome != 0 {
            corrected_word.flip(syndrome - 1);
            1
        } else {
            0
        };
        let mut message = BitVec::new();
        for pos in 1..=n {
            if !pos.is_power_of_two() {
                message.push(corrected_word.get(pos - 1));
            }
        }
        Ok(Decoded {
            message,
            codeword: corrected_word,
            corrected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parameters_7_4() {
        let c = HammingCode::new(3).unwrap();
        assert_eq!((c.n(), c.k(), c.t()), (7, 4, 1));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(HammingCode::new(1).is_err());
        assert!(HammingCode::new(17).is_err());
    }

    #[test]
    fn roundtrip_and_single_error_all_positions() {
        let c = HammingCode::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let msg = BitVec::from_bools((0..4).map(|_| rng.random()));
            let cw = c.encode(&msg);
            assert_eq!(c.decode(&cw).unwrap().message, msg);
            for i in 0..7 {
                let mut w = cw.clone();
                w.flip(i);
                let d = c.decode(&w).unwrap();
                assert_eq!(d.message, msg, "error at {i}");
                assert_eq!(d.corrected, 1);
            }
        }
    }

    #[test]
    fn larger_hamming_15_11() {
        let c = HammingCode::new(4).unwrap();
        assert_eq!((c.n(), c.k()), (15, 11));
        let msg = BitVec::from_bools((0..11).map(|i| i % 3 == 0));
        let mut w = c.encode(&msg);
        w.flip(14);
        assert_eq!(c.decode(&w).unwrap().message, msg);
    }

    #[test]
    fn double_error_miscorrects() {
        let c = HammingCode::new(3).unwrap();
        let msg = BitVec::zeros(4);
        let mut w = c.encode(&msg);
        w.flip(0);
        w.flip(1);
        let d = c.decode(&w).unwrap();
        // Hamming distance 3: two errors always mis-correct to a wrong
        // codeword (never detected by plain Hamming).
        assert_ne!(d.codeword, c.encode(&msg));
    }
}
