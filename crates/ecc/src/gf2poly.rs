//! Polynomials over GF(2), word-packed.
//!
//! Coefficient `i` (of `x^i`) lives in bit `i % 64` of word `i / 64`.
//! These polynomials carry the generator-polynomial arithmetic of the BCH
//! code; degrees stay in the low hundreds, so schoolbook algorithms are
//! fine.

use std::fmt;

/// A polynomial over GF(2).
///
/// # Examples
///
/// ```
/// use ropuf_ecc::Gf2Poly;
///
/// let a = Gf2Poly::from_coeff_bits(0b111); // x² + x + 1
/// let b = Gf2Poly::from_coeff_bits(0b11);  // x + 1
/// let p = a.mul(&b);                        // x³ + 1 over GF(2)
/// assert_eq!(p, Gf2Poly::from_coeff_bits(0b1001));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Gf2Poly {
    /// Coefficient words; invariant: no trailing zero words.
    words: Vec<u64>,
}

impl Gf2Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { words: Vec::new() }
    }

    /// The constant polynomial 1.
    pub fn one() -> Self {
        Self { words: vec![1] }
    }

    /// The monomial `x^d`.
    pub fn monomial(d: usize) -> Self {
        let mut words = vec![0u64; d / 64 + 1];
        words[d / 64] = 1 << (d % 64);
        Self { words }
    }

    /// Builds a polynomial from the low bits of a `u64` (bit `i` is the
    /// coefficient of `x^i`).
    pub fn from_coeff_bits(bits: u64) -> Self {
        let mut p = Self { words: vec![bits] };
        p.normalize();
        p
    }

    /// Builds a polynomial from coefficient booleans (index = exponent).
    pub fn from_coeffs<I: IntoIterator<Item = bool>>(coeffs: I) -> Self {
        let mut words = Vec::new();
        for (i, c) in coeffs.into_iter().enumerate() {
            if i % 64 == 0 {
                words.push(0);
            }
            if c {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        let mut p = Self { words };
        p.normalize();
        p
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        let last = self.words.last()?;
        Some((self.words.len() - 1) * 64 + (63 - last.leading_zeros() as usize))
    }

    /// Coefficient of `x^i`.
    pub fn coeff(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Addition (= subtraction) over GF(2).
    pub fn add(&self, rhs: &Gf2Poly) -> Gf2Poly {
        let mut words = self.words.clone();
        if rhs.words.len() > words.len() {
            words.resize(rhs.words.len(), 0);
        }
        for (i, w) in rhs.words.iter().enumerate() {
            words[i] ^= w;
        }
        let mut p = Self { words };
        p.normalize();
        p
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, rhs: &Gf2Poly) -> Gf2Poly {
        if self.is_zero() || rhs.is_zero() {
            return Self::zero();
        }
        let deg = self.degree().unwrap() + rhs.degree().unwrap();
        let mut words = vec![0u64; deg / 64 + 1];
        for i in 0..=self.degree().unwrap() {
            if !self.coeff(i) {
                continue;
            }
            // XOR rhs shifted left by i into the accumulator.
            let (wsh, bsh) = (i / 64, i % 64);
            for (j, &w) in rhs.words.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                words[j + wsh] ^= w << bsh;
                if bsh != 0 && j + wsh + 1 < words.len() {
                    words[j + wsh + 1] ^= w >> (64 - bsh);
                }
            }
        }
        let mut p = Self { words };
        p.normalize();
        p
    }

    /// Remainder of division by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn rem(&self, divisor: &Gf2Poly) -> Gf2Poly {
        let ddeg = divisor.degree().expect("division by zero polynomial");
        let mut r = self.clone();
        while let Some(rdeg) = r.degree() {
            if rdeg < ddeg {
                break;
            }
            let shift = rdeg - ddeg;
            r = r.add(&divisor.shl(shift));
        }
        r
    }

    /// Left shift by `s` (multiplication by `x^s`).
    pub fn shl(&self, s: usize) -> Gf2Poly {
        if self.is_zero() || s == 0 {
            return self.clone();
        }
        self.mul(&Self::monomial(s))
    }

    /// Number of non-zero coefficients.
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl fmt::Debug for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for i in (0..=self.degree().unwrap()).rev() {
            if self.coeff(i) {
                if !first {
                    write!(f, " + ")?;
                }
                match i {
                    0 => write!(f, "1")?,
                    1 => write!(f, "x")?,
                    _ => write!(f, "x^{i}")?,
                }
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_and_coeff() {
        let p = Gf2Poly::from_coeff_bits(0b1011); // x³ + x + 1
        assert_eq!(p.degree(), Some(3));
        assert!(p.coeff(0) && p.coeff(1) && !p.coeff(2) && p.coeff(3));
        assert!(!p.coeff(100));
        assert_eq!(Gf2Poly::zero().degree(), None);
    }

    #[test]
    fn add_is_xor() {
        let a = Gf2Poly::from_coeff_bits(0b1100);
        let b = Gf2Poly::from_coeff_bits(0b1010);
        assert_eq!(a.add(&b), Gf2Poly::from_coeff_bits(0b0110));
        assert!(a.add(&a).is_zero());
    }

    #[test]
    fn mul_known_product() {
        // (x+1)(x²+x+1) = x³+1 over GF(2)
        let a = Gf2Poly::from_coeff_bits(0b11);
        let b = Gf2Poly::from_coeff_bits(0b111);
        assert_eq!(a.mul(&b), Gf2Poly::from_coeff_bits(0b1001));
    }

    #[test]
    fn mul_across_word_boundary() {
        let a = Gf2Poly::monomial(63);
        let b = Gf2Poly::monomial(5);
        assert_eq!(a.mul(&b), Gf2Poly::monomial(68));
    }

    #[test]
    fn rem_reduces_degree() {
        // x⁴ mod (x³+x+1): x⁴ = x·(x³+x+1) + x²+x  → remainder x²+x
        let p = Gf2Poly::monomial(4);
        let d = Gf2Poly::from_coeff_bits(0b1011);
        assert_eq!(p.rem(&d), Gf2Poly::from_coeff_bits(0b110));
    }

    #[test]
    fn rem_of_multiple_is_zero() {
        let d = Gf2Poly::from_coeff_bits(0b10011);
        let q = Gf2Poly::from_coeff_bits(0b1101);
        assert!(q.mul(&d).rem(&d).is_zero());
    }

    #[test]
    fn weight_counts_terms() {
        assert_eq!(Gf2Poly::from_coeff_bits(0b1011).weight(), 3);
        assert_eq!(Gf2Poly::zero().weight(), 0);
    }

    #[test]
    fn debug_format() {
        let p = Gf2Poly::from_coeff_bits(0b1011);
        assert_eq!(format!("{p:?}"), "x^3 + x + 1");
        assert_eq!(format!("{:?}", Gf2Poly::zero()), "0");
    }

    #[test]
    fn shl_is_monomial_mul() {
        let p = Gf2Poly::from_coeff_bits(0b101);
        assert_eq!(p.shl(3), Gf2Poly::from_coeff_bits(0b101000));
    }
}
