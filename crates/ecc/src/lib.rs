//! Error-correcting codes, built from scratch.
//!
//! Every construction in the DATE 2014 paper finishes with an ECC "able to
//! correct `t` errors per block" (Section VI), and the attacks exploit
//! exactly the bounded-distance behavior of such a code: manipulated helper
//! data adds a controlled number of errors at the ECC input and the
//! attacker watches whether decoding still succeeds.
//!
//! The offline crate set has no usable ECC crate, so this one implements:
//!
//! * [`gf2poly`] — polynomials over GF(2);
//! * [`gf2m`] — the finite fields GF(2^m), 3 ≤ m ≤ 12, with log/antilog
//!   tables;
//! * [`bch`] — narrow-sense binary BCH codes with systematic encoding and
//!   Berlekamp–Massey + Chien-search decoding, plus shortening;
//! * [`hamming`] — single-error-correcting Hamming codes;
//! * [`repetition`] — odd-length repetition codes;
//! * [`block`] — splitting long messages across independent blocks
//!   (the paper: "Incoming bits are clustered in blocks, which are all
//!   error-corrected independently");
//! * [`code_offset`] — the code-offset secure sketch used both by the
//!   constructions under attack and by the fuzzy-extractor reference
//!   (Section VII-A).
//!
//! # Examples
//!
//! ```
//! use ropuf_ecc::{BchCode, BinaryCode};
//! use ropuf_numeric::BitVec;
//!
//! let code = BchCode::new(4, 2).unwrap(); // BCH(15, 7, t=2)
//! let msg = BitVec::from_bools((0..code.k()).map(|i| i % 2 == 0));
//! let mut cw = code.encode(&msg);
//! cw.flip(1);
//! cw.flip(9);
//! let decoded = code.decode(&cw).unwrap();
//! assert_eq!(decoded.message, msg);
//! assert_eq!(decoded.corrected, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bch;
pub mod block;
pub mod code;
pub mod code_offset;
pub mod gf2m;
pub mod gf2poly;
pub mod hamming;
pub mod repetition;

pub use bch::BchCode;
pub use block::BlockCode;
pub use code::{BinaryCode, DecodeError, Decoded};
pub use code_offset::CodeOffset;
pub use gf2m::Gf2m;
pub use gf2poly::Gf2Poly;
pub use hamming::HammingCode;
pub use repetition::RepetitionCode;
