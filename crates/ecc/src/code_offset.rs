//! The code-offset secure sketch.
//!
//! The standard helper-data mechanism from the fuzzy-extractor literature
//! (paper Section VII-A, its reference \[2\]): at enrollment, draw a random
//! codeword `c` and publish `h = w ⊕ c` for response `w`. At
//! reconstruction, compute `c' = decode(w' ⊕ h)` and recover
//! `w = c' ⊕ h`; any response within `t` bits of `w` reproduces it exactly.
//!
//! The constructions under attack in the paper use their ECC exactly this
//! way ("public helper data allows regenerated instances to be
//! error-corrected, so that they are identical to the reference"), and the
//! attacks *inject errors* by flipping bits of `h`: flipping bit `i` of the
//! offset flips bit `i` of `w' ⊕ h`, adding exactly one error at the ECC
//! input — the acceleration trick of Section VI.

use rand::Rng;
use ropuf_numeric::BitVec;

use crate::code::{BinaryCode, DecodeError};

/// A code-offset secure sketch over any [`BinaryCode`] whose codeword
/// length equals the response length.
///
/// # Examples
///
/// ```
/// use ropuf_ecc::{BchCode, BinaryCode, BlockCode, CodeOffset};
/// use ropuf_numeric::BitVec;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let code = BlockCode::new(BchCode::new(4, 2).unwrap(), 7);
/// let sketch = CodeOffset::new(code);
/// let w = BitVec::from_bools((0..15).map(|i| i % 4 == 0));
/// let helper = sketch.sketch(&w, &mut rng);
/// let mut w_noisy = w.clone();
/// w_noisy.flip(3);
/// assert_eq!(sketch.recover(&w_noisy, &helper).unwrap(), w);
/// ```
#[derive(Debug, Clone)]
pub struct CodeOffset<C> {
    code: C,
}

impl<C: BinaryCode> CodeOffset<C> {
    /// Wraps a code.
    pub fn new(code: C) -> Self {
        Self { code }
    }

    /// The underlying code.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// Response length protected by this sketch (= codeword length).
    pub fn response_len(&self) -> usize {
        self.code.n()
    }

    /// Enrollment: draws a uniform codeword and returns the public offset
    /// `h = w ⊕ c`.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != self.response_len()`.
    pub fn sketch<R: Rng + ?Sized>(&self, w: &BitVec, rng: &mut R) -> BitVec {
        assert_eq!(w.len(), self.code.n(), "response length mismatch");
        let msg = BitVec::from_bools((0..self.code.k()).map(|_| rng.random()));
        let c = self.code.encode(&msg);
        w.xor(&c)
    }

    /// Deterministic enrollment from a chosen message (used by attackers
    /// who need *two comparable sets* of ECC helper data, paper
    /// Section VI-A/VI-C).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn sketch_with_message(&self, w: &BitVec, msg: &BitVec) -> BitVec {
        assert_eq!(w.len(), self.code.n(), "response length mismatch");
        let c = self.code.encode(msg);
        w.xor(&c)
    }

    /// Reconstruction: recovers the enrolled response from a noisy reading.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when `w'` differs from the enrolled response
    /// in more than `t` bits per block (the observable failure event).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn recover(&self, w_noisy: &BitVec, helper: &BitVec) -> Result<BitVec, DecodeError> {
        assert_eq!(w_noisy.len(), self.code.n(), "response length mismatch");
        if helper.len() != self.code.n() {
            return Err(DecodeError::LengthMismatch {
                expected: self.code.n(),
                got: helper.len(),
            });
        }
        let offset = w_noisy.xor(helper);
        let decoded = self.code.decode(&offset)?;
        Ok(decoded.codeword.xor(helper))
    }

    /// Number of bit errors the decoder would see for a given noisy
    /// reading (diagnostic; used to regenerate the paper's Fig. 5).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when decoding fails, in which case the error
    /// count is not observable.
    pub fn observed_errors(&self, w_noisy: &BitVec, helper: &BitVec) -> Result<usize, DecodeError> {
        let offset = w_noisy.xor(helper);
        self.code.decode(&offset).map(|d| d.corrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bch::BchCode;
    use crate::block::BlockCode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (CodeOffset<BlockCode<BchCode>>, BitVec, BitVec, StdRng) {
        let mut rng = StdRng::seed_from_u64(9);
        let code = BlockCode::new(BchCode::new(5, 3).unwrap(), 16);
        let sketch = CodeOffset::new(code);
        let w = BitVec::from_bools((0..31).map(|i| (i * 5) % 7 < 3));
        let helper = sketch.sketch(&w, &mut rng);
        (sketch, w, helper, rng)
    }

    #[test]
    fn exact_reading_recovers() {
        let (sketch, w, helper, _) = setup();
        assert_eq!(sketch.recover(&w, &helper).unwrap(), w);
    }

    #[test]
    fn noisy_reading_within_t_recovers() {
        let (sketch, w, helper, _) = setup();
        let mut w2 = w.clone();
        w2.flip(0);
        w2.flip(10);
        w2.flip(30);
        assert_eq!(sketch.recover(&w2, &helper).unwrap(), w);
    }

    #[test]
    fn helper_bit_flip_adds_exactly_one_error() {
        // The attack acceleration primitive: flipping offset bit i adds one
        // error at the decoder input.
        let (sketch, w, helper, _) = setup();
        let t = sketch.code().t();
        let mut h2 = helper.clone();
        for i in 0..t {
            h2.flip(i);
        }
        assert_eq!(sketch.observed_errors(&w, &h2).unwrap(), t);
        // One more flip exceeds capability.
        h2.flip(t);
        assert!(sketch.recover(&w, &h2).is_err());
    }

    #[test]
    fn beyond_t_fails() {
        let (sketch, w, helper, _) = setup();
        let mut w2 = w.clone();
        for i in 0..4 {
            w2.flip(i * 7);
        }
        assert!(sketch.recover(&w2, &helper).is_err());
    }

    #[test]
    fn sketch_with_message_is_deterministic() {
        let (sketch, w, _, _) = setup();
        let msg = BitVec::from_bools((0..16).map(|i| i % 2 == 0));
        let h1 = sketch.sketch_with_message(&w, &msg);
        let h2 = sketch.sketch_with_message(&w, &msg);
        assert_eq!(h1, h2);
        assert_eq!(sketch.recover(&w, &h1).unwrap(), w);
    }

    #[test]
    fn wrong_helper_length_is_error_not_panic() {
        let (sketch, w, _, _) = setup();
        let bad = BitVec::zeros(30);
        assert!(matches!(
            sketch.recover(&w, &bad),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }
}
