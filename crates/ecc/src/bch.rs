//! Narrow-sense binary BCH codes.
//!
//! `BCH(n = 2^m − 1, k, t)` with systematic encoding and algebraic decoding
//! (syndromes → Berlekamp–Massey → Chien search). Shortened variants drop
//! `s` leading message bits so that arbitrary response lengths can be
//! protected.
//!
//! Bit order convention: bit `j` of a codeword [`BitVec`] is the
//! coefficient of `x^j` of the code polynomial.

use ropuf_numeric::BitVec;

use crate::code::{BinaryCode, DecodeError, Decoded};
use crate::gf2m::{Gf2m, UnsupportedFieldError};
use crate::gf2poly::Gf2Poly;

/// A (possibly shortened) narrow-sense binary BCH code.
///
/// # Examples
///
/// ```
/// use ropuf_ecc::{BchCode, BinaryCode};
/// use ropuf_numeric::BitVec;
///
/// let code = BchCode::new(5, 3).unwrap(); // BCH(31, 16, t=3)
/// assert_eq!((code.n(), code.k(), code.t()), (31, 16, 3));
/// let msg = BitVec::zeros(16);
/// let cw = code.encode(&msg);
/// assert!(code.is_codeword(&cw));
/// ```
#[derive(Debug, Clone)]
pub struct BchCode {
    field: Gf2m,
    /// Full (unshortened) code length `2^m − 1`.
    full_n: usize,
    /// Full message length.
    full_k: usize,
    /// Number of leading message bits removed by shortening.
    shorten: usize,
    t: usize,
    generator: Gf2Poly,
}

/// Errors constructing a [`BchCode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BchConstructError {
    /// Field size out of the supported range.
    Field(UnsupportedFieldError),
    /// `t` is zero or so large that no message bits remain.
    InvalidT {
        /// Requested correction capability.
        t: usize,
        /// Message bits that would remain (0 when invalid).
        remaining_k: usize,
    },
    /// Shortening at least as long as the message length.
    InvalidShorten {
        /// Requested shortening.
        shorten: usize,
        /// Full message length.
        k: usize,
    },
}

impl std::fmt::Display for BchConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BchConstructError::Field(e) => write!(f, "{e}"),
            BchConstructError::InvalidT { t, remaining_k } => {
                write!(
                    f,
                    "t = {t} leaves no message bits (k would be {remaining_k})"
                )
            }
            BchConstructError::InvalidShorten { shorten, k } => {
                write!(f, "shortening {shorten} must be less than k = {k}")
            }
        }
    }
}

impl std::error::Error for BchConstructError {}

impl From<UnsupportedFieldError> for BchConstructError {
    fn from(e: UnsupportedFieldError) -> Self {
        BchConstructError::Field(e)
    }
}

impl BchCode {
    /// Constructs the full-length BCH code over GF(2^m) correcting `t`
    /// errors.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported `m` or a `t` that leaves no
    /// message bits.
    pub fn new(m: u32, t: usize) -> Result<Self, BchConstructError> {
        if t == 0 {
            return Err(BchConstructError::InvalidT { t, remaining_k: 0 });
        }
        let field = Gf2m::new(m)?;
        let full_n = field.order() as usize;
        // Generator = product of minimal polynomials over the distinct
        // cyclotomic cosets of 1..=2t.
        let mut covered = std::collections::HashSet::new();
        let mut generator = Gf2Poly::one();
        for i in 1..=(2 * t as u32) {
            let rep = i % field.order();
            if covered.contains(&rep) {
                continue;
            }
            for c in field.cyclotomic_coset(rep) {
                covered.insert(c);
            }
            generator = generator.mul(&field.minimal_polynomial(rep));
        }
        let gdeg = generator.degree().expect("generator is non-zero");
        if gdeg >= full_n {
            return Err(BchConstructError::InvalidT { t, remaining_k: 0 });
        }
        let full_k = full_n - gdeg;
        Ok(Self {
            field,
            full_n,
            full_k,
            shorten: 0,
            t,
            generator,
        })
    }

    /// Returns a shortened version of this code: `s` leading message bits
    /// are fixed to zero and removed, giving an `(n − s, k − s)` code with
    /// the same `t`.
    ///
    /// # Errors
    ///
    /// Returns [`BchConstructError::InvalidShorten`] if `s >= k`.
    pub fn shortened(&self, s: usize) -> Result<Self, BchConstructError> {
        if self.shorten + s >= self.full_k {
            return Err(BchConstructError::InvalidShorten {
                shorten: s,
                k: self.k(),
            });
        }
        let mut c = self.clone();
        c.shorten += s;
        Ok(c)
    }

    /// Picks the smallest supported BCH code (by `m`, then maximal
    /// shortening) whose message length is at least `k_min` with
    /// correction capability exactly `t`.
    ///
    /// # Errors
    ///
    /// Returns the last construction error if no supported field fits.
    pub fn for_message_len(k_min: usize, t: usize) -> Result<Self, BchConstructError> {
        let mut last_err = BchConstructError::InvalidT { t, remaining_k: 0 };
        for m in 3..=12 {
            match Self::new(m, t) {
                Ok(code) => {
                    if code.full_k >= k_min {
                        let s = code.full_k - k_min;
                        return if s == 0 { Ok(code) } else { code.shortened(s) };
                    }
                    last_err = BchConstructError::InvalidT {
                        t,
                        remaining_k: code.full_k,
                    };
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// The generator polynomial.
    pub fn generator(&self) -> &Gf2Poly {
        &self.generator
    }

    /// The underlying field.
    pub fn field(&self) -> &Gf2m {
        &self.field
    }

    /// Number of parity (redundancy) bits `n − k`.
    pub fn parity_bits(&self) -> usize {
        self.full_n - self.full_k
    }

    /// Expands a shortened word to full length by re-inserting the zero
    /// message bits (at the top positions).
    fn expand(&self, word: &BitVec) -> BitVec {
        if self.shorten == 0 {
            return word.clone();
        }
        let mut full = word.clone();
        for _ in 0..self.shorten {
            full.push(false);
        }
        full
    }

    /// Computes the 2t syndromes `S_i = r(α^i)` of a full-length word.
    fn syndromes(&self, word: &BitVec) -> Vec<u32> {
        (1..=2 * self.t as u64)
            .map(|i| {
                let mut s = 0u32;
                for j in 0..self.full_n {
                    if word.get(j) {
                        s ^= self.field.alpha_pow(i * j as u64);
                    }
                }
                s
            })
            .collect()
    }

    /// Berlekamp–Massey: returns the error-locator polynomial coefficients
    /// `σ` (σ[0] = 1) over GF(2^m).
    fn berlekamp_massey(&self, syn: &[u32]) -> Vec<u32> {
        let f = &self.field;
        let mut sigma = vec![1u32];
        let mut prev = vec![1u32];
        let mut l = 0usize;
        let mut shift = 1usize;
        let mut b = 1u32;
        for n in 0..syn.len() {
            // Discrepancy d = S_n + Σ_{i=1..L} σ_i S_{n-i}.
            let mut d = syn[n];
            for i in 1..=l.min(sigma.len() - 1) {
                if n >= i {
                    d ^= f.mul(sigma[i], syn[n - i]);
                }
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= n {
                let t_poly = sigma.clone();
                let coef = f.div(d, b);
                sigma = poly_sub_scaled_shift(f, &sigma, &prev, coef, shift);
                l = n + 1 - l;
                prev = t_poly;
                b = d;
                shift = 1;
            } else {
                let coef = f.div(d, b);
                sigma = poly_sub_scaled_shift(f, &sigma, &prev, coef, shift);
                shift += 1;
            }
        }
        // Trim trailing zeros.
        while sigma.len() > 1 && *sigma.last().unwrap() == 0 {
            sigma.pop();
        }
        sigma
    }

    /// Chien search: positions `j` with `σ(α^{−j}) = 0`.
    fn chien(&self, sigma: &[u32]) -> Vec<usize> {
        let f = &self.field;
        let n = self.full_n as u64;
        let mut out = Vec::new();
        for j in 0..self.full_n as u64 {
            // Evaluate σ at α^{-j}.
            let mut acc = 0u32;
            for (d, &c) in sigma.iter().enumerate() {
                if c != 0 {
                    let e = (n - j as u64 % n) % n * d as u64;
                    acc ^= f.mul(c, f.alpha_pow(e));
                }
            }
            if acc == 0 {
                out.push(j as usize);
            }
        }
        out
    }
}

/// `a + coef·x^shift·b` over GF(2^m) (addition = subtraction).
fn poly_sub_scaled_shift(f: &Gf2m, a: &[u32], b: &[u32], coef: u32, shift: usize) -> Vec<u32> {
    let len = a.len().max(b.len() + shift);
    let mut out = vec![0u32; len];
    out[..a.len()].copy_from_slice(a);
    for (i, &bc) in b.iter().enumerate() {
        out[i + shift] ^= f.mul(coef, bc);
    }
    out
}

impl BinaryCode for BchCode {
    fn n(&self) -> usize {
        self.full_n - self.shorten
    }

    fn k(&self) -> usize {
        self.full_k - self.shorten
    }

    fn t(&self) -> usize {
        self.t
    }

    fn encode(&self, msg: &BitVec) -> BitVec {
        assert_eq!(msg.len(), self.k(), "message length must equal k");
        // Message polynomial placed in the high positions:
        // c(x) = m(x)·x^(n−k) + rem(m(x)·x^(n−k), g).
        let nk = self.parity_bits();
        let mpoly = Gf2Poly::from_coeffs(std::iter::repeat(false).take(nk).chain(msg.iter()));
        let rem = mpoly.rem(&self.generator);
        let mut cw = BitVec::zeros(self.n());
        for j in 0..nk {
            if rem.coeff(j) {
                cw.set(j, true);
            }
        }
        for (idx, bit) in msg.iter().enumerate() {
            if bit {
                cw.set(nk + idx, true);
            }
        }
        cw
    }

    fn decode(&self, word: &BitVec) -> Result<Decoded, DecodeError> {
        if word.len() != self.n() {
            return Err(DecodeError::LengthMismatch {
                expected: self.n(),
                got: word.len(),
            });
        }
        let full = self.expand(word);
        let syn = self.syndromes(&full);
        if syn.iter().all(|&s| s == 0) {
            let message = full.slice(self.parity_bits(), self.k());
            return Ok(Decoded {
                message,
                codeword: word.clone(),
                corrected: 0,
            });
        }
        let sigma = self.berlekamp_massey(&syn);
        let errors = sigma.len() - 1;
        if errors > self.t {
            return Err(DecodeError::TooManyErrors);
        }
        let positions = self.chien(&sigma);
        if positions.len() != errors {
            return Err(DecodeError::TooManyErrors);
        }
        let mut corrected = full.clone();
        for &p in &positions {
            if p >= self.full_n - self.shorten && p >= self.parity_bits() + self.k() {
                // Error located in a shortened (known-zero) position:
                // impossible for ≤ t real errors ⇒ decoding failure.
                return Err(DecodeError::TooManyErrors);
            }
            corrected.flip(p);
        }
        // Sanity: corrected word must have zero syndromes.
        if self.syndromes(&corrected).iter().any(|&s| s != 0) {
            return Err(DecodeError::TooManyErrors);
        }
        let message = corrected.slice(self.parity_bits(), self.k());
        let codeword = corrected.slice(0, self.n());
        Ok(Decoded {
            message,
            codeword,
            corrected: positions.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn classic_bch_15_7_2() {
        let code = BchCode::new(4, 2).unwrap();
        assert_eq!(code.n(), 15);
        assert_eq!(code.k(), 7);
        // g(x) = x⁸+x⁷+x⁶+x⁴+1 (standard narrow-sense BCH(15,7)).
        assert_eq!(code.generator(), &Gf2Poly::from_coeff_bits(0b111010001));
    }

    #[test]
    fn classic_bch_15_5_3() {
        let code = BchCode::new(4, 3).unwrap();
        assert_eq!(code.k(), 5);
        // g(x) = x¹⁰+x⁸+x⁵+x⁴+x²+x+1.
        assert_eq!(code.generator(), &Gf2Poly::from_coeff_bits(0b10100110111));
    }

    #[test]
    fn bch_31_16_3_parameters() {
        let code = BchCode::new(5, 3).unwrap();
        assert_eq!((code.n(), code.k(), code.t()), (31, 16, 3));
    }

    #[test]
    fn bch_63_45_3_parameters() {
        let code = BchCode::new(6, 3).unwrap();
        assert_eq!((code.n(), code.k(), code.t()), (63, 45, 3));
    }

    #[test]
    fn bch_127_64_10_parameters() {
        let code = BchCode::new(7, 10).unwrap();
        assert_eq!((code.n(), code.k()), (127, 64));
    }

    #[test]
    fn encode_produces_codeword_divisible_by_generator() {
        let code = BchCode::new(5, 2).unwrap();
        let msg = BitVec::from_bools((0..code.k()).map(|i| i % 3 == 0));
        let cw = code.encode(&msg);
        let cpoly = Gf2Poly::from_coeffs(cw.iter());
        assert!(cpoly.rem(code.generator()).is_zero());
    }

    #[test]
    fn roundtrip_no_errors() {
        let code = BchCode::new(5, 3).unwrap();
        let msg = BitVec::from_bools((0..code.k()).map(|i| (i * 7) % 3 == 1));
        let cw = code.encode(&msg);
        let d = code.decode(&cw).unwrap();
        assert_eq!(d.message, msg);
        assert_eq!(d.corrected, 0);
        assert_eq!(d.codeword, cw);
    }

    #[test]
    fn corrects_up_to_t_errors_exhaustive_positions() {
        let code = BchCode::new(4, 2).unwrap();
        let msg = BitVec::from_bools((0..7).map(|i| i % 2 == 1));
        let cw = code.encode(&msg);
        // All single and double error patterns.
        for i in 0..15 {
            let mut w = cw.clone();
            w.flip(i);
            let d = code.decode(&w).unwrap();
            assert_eq!(d.message, msg, "single error at {i}");
            assert_eq!(d.corrected, 1);
            for j in i + 1..15 {
                let mut w2 = w.clone();
                w2.flip(j);
                let d2 = code.decode(&w2).unwrap();
                assert_eq!(d2.message, msg, "errors at {i},{j}");
                assert_eq!(d2.corrected, 2);
            }
        }
    }

    #[test]
    fn random_t_errors_corrected_bch_63() {
        let code = BchCode::new(6, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..50 {
            let msg = BitVec::from_bools((0..code.k()).map(|_| rng.random()));
            let cw = code.encode(&msg);
            let mut w = cw.clone();
            let errs = ropuf_numeric::sampling::sample_indices(&mut rng, code.n(), code.t());
            for &e in &errs {
                w.flip(e);
            }
            let d = code
                .decode(&w)
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            assert_eq!(d.message, msg);
            assert_eq!(d.corrected, code.t());
        }
    }

    #[test]
    fn more_than_t_errors_fails_or_miscorrects() {
        let code = BchCode::new(5, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let msg = BitVec::from_bools((0..code.k()).map(|_| rng.random()));
        let cw = code.encode(&msg);
        let mut failures = 0;
        let mut miscorrections = 0;
        for _ in 0..100 {
            let mut w = cw.clone();
            for e in ropuf_numeric::sampling::sample_indices(&mut rng, code.n(), code.t() + 2) {
                w.flip(e);
            }
            match code.decode(&w) {
                Err(DecodeError::TooManyErrors) => failures += 1,
                Ok(d) if d.message != msg => miscorrections += 1,
                Ok(_) => {} // error pattern happened to stay within a ball
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            failures + miscorrections > 50,
            "t+2 errors should usually break decoding"
        );
    }

    #[test]
    fn shortened_code_roundtrip() {
        let code = BchCode::new(6, 3).unwrap().shortened(20).unwrap();
        assert_eq!(code.k(), 25);
        assert_eq!(code.n(), 43);
        let mut rng = StdRng::seed_from_u64(5);
        let msg = BitVec::from_bools((0..25).map(|_| rng.random()));
        let cw = code.encode(&msg);
        let mut w = cw.clone();
        for e in [0usize, 17, 40] {
            w.flip(e);
        }
        let d = code.decode(&w).unwrap();
        assert_eq!(d.message, msg);
        assert_eq!(d.corrected, 3);
    }

    #[test]
    fn for_message_len_picks_fitting_code() {
        let code = BchCode::for_message_len(20, 2).unwrap();
        assert_eq!(code.k(), 20);
        assert_eq!(code.t(), 2);
        let exact = BchCode::for_message_len(7, 2).unwrap();
        assert_eq!((exact.n(), exact.k()), (15, 7));
    }

    #[test]
    fn wrong_length_rejected() {
        let code = BchCode::new(4, 2).unwrap();
        let w = BitVec::zeros(14);
        assert!(matches!(
            code.decode(&w),
            Err(DecodeError::LengthMismatch {
                expected: 15,
                got: 14
            })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BchCode::new(2, 1).is_err());
        assert!(BchCode::new(4, 0).is_err());
        // t=3 over GF(8) degenerates to the [7,1] repetition code — valid.
        let rep7 = BchCode::new(3, 3).unwrap();
        assert_eq!((rep7.n(), rep7.k()), (7, 1));
        assert!(BchCode::new(3, 4).is_err()); // t too large for n=7
        let code = BchCode::new(4, 2).unwrap();
        assert!(code.shortened(7).is_err());
    }

    #[test]
    fn all_zero_and_all_one_codewords() {
        // Narrow-sense BCH contains the all-zero word; all-ones iff
        // x+1 does not divide g (n odd ⇒ all-ones is a codeword iff
        // g(1) != 0). Just verify zero decodes cleanly.
        let code = BchCode::new(5, 3).unwrap();
        let z = BitVec::zeros(31);
        let d = code.decode(&z).unwrap();
        assert_eq!(d.message, BitVec::zeros(16));
    }
}
