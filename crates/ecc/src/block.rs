//! Splitting long bit strings across independent ECC blocks.
//!
//! The paper (Section V-D): "Incoming bits are clustered in blocks, which
//! are all error-corrected independently." [`BlockCode`] wraps any
//! [`BinaryCode`] and pads the final block with zeros.

use ropuf_numeric::BitVec;

use crate::code::{BinaryCode, DecodeError, Decoded};

/// A block-composition wrapper around an inner [`BinaryCode`].
///
/// Encodes a message of arbitrary length `L` as `⌈L / k⌉` inner codewords;
/// the last block is zero-padded. Decoding fails if **any** block fails —
/// exactly the key-regeneration failure event the attacks observe.
///
/// # Examples
///
/// ```
/// use ropuf_ecc::{BchCode, BinaryCode, BlockCode};
/// use ropuf_numeric::BitVec;
///
/// let inner = BchCode::new(4, 2).unwrap(); // BCH(15, 7)
/// let code = BlockCode::new(inner, 20);    // 20-bit messages, 3 blocks
/// let msg = BitVec::from_bools((0..20).map(|i| i % 2 == 0));
/// let cw = code.encode(&msg);
/// assert_eq!(cw.len(), 45);
/// assert_eq!(code.decode(&cw).unwrap().message, msg);
/// ```
#[derive(Debug, Clone)]
pub struct BlockCode<C> {
    inner: C,
    message_len: usize,
    blocks: usize,
}

impl<C: BinaryCode> BlockCode<C> {
    /// Wraps `inner` for messages of `message_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `message_len` is zero.
    pub fn new(inner: C, message_len: usize) -> Self {
        assert!(message_len > 0, "message length must be positive");
        let blocks = message_len.div_ceil(inner.k());
        Self {
            inner,
            message_len,
            blocks,
        }
    }

    /// The inner code.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Decodes and additionally reports the total number of corrected
    /// errors plus per-block outcomes.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] from the first failing block.
    pub fn decode_detailed(&self, word: &BitVec) -> Result<(Decoded, Vec<usize>), DecodeError> {
        if word.len() != self.n() {
            return Err(DecodeError::LengthMismatch {
                expected: self.n(),
                got: word.len(),
            });
        }
        let ni = self.inner.n();
        let mut message = BitVec::new();
        let mut codeword = BitVec::new();
        let mut corrected = 0;
        let mut per_block = Vec::with_capacity(self.blocks);
        for b in 0..self.blocks {
            let block = word.slice(b * ni, ni);
            let d = self.inner.decode(&block)?;
            corrected += d.corrected;
            per_block.push(d.corrected);
            message.extend_bits(&d.message);
            codeword.extend_bits(&d.codeword);
        }
        let message = message.slice(0, self.message_len);
        Ok((
            Decoded {
                message,
                codeword,
                corrected,
            },
            per_block,
        ))
    }
}

impl<C: BinaryCode> BinaryCode for BlockCode<C> {
    fn n(&self) -> usize {
        self.blocks * self.inner.n()
    }

    fn k(&self) -> usize {
        self.message_len
    }

    /// Guaranteed per-block capability: the wrapper corrects any pattern
    /// with at most `inner.t()` errors **per block**; as a whole-word
    /// guarantee only `inner.t()` is safe.
    fn t(&self) -> usize {
        self.inner.t()
    }

    fn encode(&self, msg: &BitVec) -> BitVec {
        assert_eq!(msg.len(), self.message_len, "message length mismatch");
        let ki = self.inner.k();
        let mut padded = msg.clone();
        while padded.len() < self.blocks * ki {
            padded.push(false);
        }
        let mut out = BitVec::new();
        for b in 0..self.blocks {
            let chunk = padded.slice(b * ki, ki);
            out.extend_bits(&self.inner.encode(&chunk));
        }
        out
    }

    fn decode(&self, word: &BitVec) -> Result<Decoded, DecodeError> {
        self.decode_detailed(word).map(|(d, _)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bch::BchCode;
    use crate::repetition::RepetitionCode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn repetition_blocks_roundtrip() {
        let code = BlockCode::new(RepetitionCode::new(3).unwrap(), 10);
        assert_eq!(code.blocks(), 10);
        assert_eq!(code.n(), 30);
        let msg = BitVec::from_bools((0..10).map(|i| i % 2 == 0));
        let cw = code.encode(&msg);
        assert_eq!(code.decode(&cw).unwrap().message, msg);
    }

    #[test]
    fn bch_blocks_with_padding() {
        let code = BlockCode::new(BchCode::new(4, 2).unwrap(), 10); // 2 blocks, pad 4
        assert_eq!(code.blocks(), 2);
        let mut rng = StdRng::seed_from_u64(2);
        let msg = BitVec::from_bools((0..10).map(|_| rng.random()));
        let cw = code.encode(&msg);
        let d = code.decode(&cw).unwrap();
        assert_eq!(d.message, msg);
        assert_eq!(d.message.len(), 10);
    }

    #[test]
    fn per_block_capability() {
        // t errors in EVERY block still decode.
        let inner = BchCode::new(4, 2).unwrap();
        let code = BlockCode::new(inner, 14);
        let msg = BitVec::from_bools((0..14).map(|i| i % 3 == 0));
        let mut cw = code.encode(&msg);
        for b in 0..code.blocks() {
            cw.flip(b * 15);
            cw.flip(b * 15 + 7);
        }
        let (d, per_block) = code.decode_detailed(&cw).unwrap();
        assert_eq!(d.message, msg);
        assert_eq!(per_block, vec![2, 2]);
        assert_eq!(d.corrected, 4);
    }

    #[test]
    fn one_overloaded_block_fails_everything() {
        let inner = BchCode::new(4, 2).unwrap();
        let code = BlockCode::new(inner, 14);
        let msg = BitVec::zeros(14);
        let mut cw = code.encode(&msg);
        // Put t+1 = 3 errors into block 1.
        cw.flip(15);
        cw.flip(18);
        cw.flip(22);
        assert!(code.decode(&cw).is_err());
    }

    #[test]
    fn wrong_total_length_rejected() {
        let code = BlockCode::new(RepetitionCode::new(3).unwrap(), 4);
        assert!(code.decode(&BitVec::zeros(11)).is_err());
    }
}
