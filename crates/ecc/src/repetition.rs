//! Odd-length repetition codes.
//!
//! The simplest `t`-error-correcting code: each message bit is repeated
//! `n = 2t + 1` times and decoded by majority vote. Useful as the
//! degenerate/reference ECC in experiments and as the inner code of
//! concatenated schemes.

use ropuf_numeric::BitVec;

use crate::code::{BinaryCode, DecodeError, Decoded};

/// The `[n, 1, n]` repetition code with odd `n`.
///
/// # Examples
///
/// ```
/// use ropuf_ecc::{BinaryCode, RepetitionCode};
/// use ropuf_numeric::BitVec;
///
/// let code = RepetitionCode::new(5).unwrap();
/// let cw = code.encode(&BitVec::from_bools([true]));
/// assert_eq!(cw.to_string(), "11111");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepetitionCode {
    n: usize,
}

/// Error constructing a [`RepetitionCode`] with even or zero length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvenLengthError {
    /// The rejected length.
    pub n: usize,
}

impl std::fmt::Display for EvenLengthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "repetition length must be odd and positive, got {}",
            self.n
        )
    }
}

impl std::error::Error for EvenLengthError {}

impl RepetitionCode {
    /// Creates a repetition code of odd length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`EvenLengthError`] if `n` is even or zero (majority vote
    /// needs an odd length).
    pub fn new(n: usize) -> Result<Self, EvenLengthError> {
        if n == 0 || n % 2 == 0 {
            return Err(EvenLengthError { n });
        }
        Ok(Self { n })
    }
}

impl BinaryCode for RepetitionCode {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        1
    }

    fn t(&self) -> usize {
        (self.n - 1) / 2
    }

    fn encode(&self, msg: &BitVec) -> BitVec {
        assert_eq!(msg.len(), 1, "message length must equal k = 1");
        if msg.get(0) {
            BitVec::ones(self.n)
        } else {
            BitVec::zeros(self.n)
        }
    }

    fn decode(&self, word: &BitVec) -> Result<Decoded, DecodeError> {
        if word.len() != self.n {
            return Err(DecodeError::LengthMismatch {
                expected: self.n,
                got: word.len(),
            });
        }
        let ones = word.count_ones();
        let bit = ones * 2 > self.n;
        let corrected = if bit { self.n - ones } else { ones };
        Ok(Decoded {
            message: BitVec::from_bools([bit]),
            codeword: if bit {
                BitVec::ones(self.n)
            } else {
                BitVec::zeros(self.n)
            },
            corrected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters() {
        let c = RepetitionCode::new(7).unwrap();
        assert_eq!((c.n(), c.k(), c.t()), (7, 1, 3));
    }

    #[test]
    fn even_or_zero_rejected() {
        assert!(RepetitionCode::new(4).is_err());
        assert!(RepetitionCode::new(0).is_err());
    }

    #[test]
    fn majority_vote_corrects() {
        let c = RepetitionCode::new(5).unwrap();
        let mut w = c.encode(&BitVec::from_bools([true]));
        w.flip(0);
        w.flip(3);
        let d = c.decode(&w).unwrap();
        assert!(d.message.get(0));
        assert_eq!(d.corrected, 2);
    }

    #[test]
    fn beyond_t_miscorrects_silently() {
        // Repetition decoding never reports failure: t+1 flips mis-decode.
        let c = RepetitionCode::new(3).unwrap();
        let mut w = c.encode(&BitVec::from_bools([false]));
        w.flip(0);
        w.flip(1);
        let d = c.decode(&w).unwrap();
        assert!(d.message.get(0), "mis-correction expected");
    }

    #[test]
    fn wrong_length_rejected() {
        let c = RepetitionCode::new(3).unwrap();
        assert!(c.decode(&BitVec::zeros(4)).is_err());
    }
}
