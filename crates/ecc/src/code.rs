//! The common interface of binary block codes.

use ropuf_numeric::BitVec;
use std::fmt;

/// Outcome of a successful bounded-distance decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// The decoded message (length `k`).
    pub message: BitVec,
    /// The corrected codeword (length `n`).
    pub codeword: BitVec,
    /// Number of bit errors that were corrected.
    pub corrected: usize,
}

/// Decoding failure of a bounded-distance decoder.
///
/// A failure is the paper's observable event: with more than `t` errors a
/// BCH decoder either reports failure or mis-corrects; both change device
/// behavior visibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// More errors than the decoder can locate (error-locator degree
    /// exceeded `t`, or the Chien search found fewer roots than the
    /// locator degree).
    TooManyErrors,
    /// Input length does not equal `n`.
    LengthMismatch {
        /// Expected codeword length.
        expected: usize,
        /// Received length.
        got: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooManyErrors => write!(f, "too many errors to correct"),
            DecodeError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "codeword length mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A binary block code with bounded-distance decoding.
///
/// Implementations guarantee: any pattern of at most [`t`](Self::t) bit
/// errors applied to a valid codeword decodes back to the original message
/// with `Ok`; patterns of more than `t` errors either return
/// [`DecodeError::TooManyErrors`] or mis-decode to a *different* valid
/// codeword (undetected mis-correction, inherent to bounded-distance
/// decoding).
pub trait BinaryCode {
    /// Codeword length in bits.
    fn n(&self) -> usize;

    /// Message length in bits.
    fn k(&self) -> usize;

    /// Guaranteed error-correction capability per codeword.
    fn t(&self) -> usize;

    /// Encodes a `k`-bit message into an `n`-bit codeword.
    ///
    /// # Panics
    ///
    /// Panics if `msg.len() != self.k()`.
    fn encode(&self, msg: &BitVec) -> BitVec;

    /// Decodes an `n`-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LengthMismatch`] for wrong input length and
    /// [`DecodeError::TooManyErrors`] when correction fails.
    fn decode(&self, word: &BitVec) -> Result<Decoded, DecodeError>;

    /// Convenience: `true` iff `word` is a valid codeword.
    fn is_codeword(&self, word: &BitVec) -> bool {
        match self.decode(word) {
            Ok(d) => d.corrected == 0,
            Err(_) => false,
        }
    }

    /// Code rate `k / n`.
    fn rate(&self) -> f64 {
        self.k() as f64 / self.n() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_error_display() {
        assert_eq!(
            DecodeError::TooManyErrors.to_string(),
            "too many errors to correct"
        );
        let e = DecodeError::LengthMismatch {
            expected: 15,
            got: 14,
        };
        assert!(e.to_string().contains("expected 15"));
    }
}
