//! The finite fields GF(2^m) with log/antilog tables.
//!
//! Elements are represented as `u32` bit vectors over the polynomial basis
//! defined by a fixed primitive polynomial per `m`. The generator `α = x`
//! (value `0b10`) is primitive, so exp/log tables cover all non-zero
//! elements.

use std::fmt;
use std::sync::Arc;

/// Primitive polynomials (including the leading term) for 3 ≤ m ≤ 12.
const PRIMITIVE_POLYS: [(u32, u32); 10] = [
    (3, 0b1011),
    (4, 0b10011),
    (5, 0b100101),
    (6, 0b1000011),
    (7, 0b10001001),
    (8, 0b100011101),
    (9, 0b1000010001),
    (10, 0b10000001001),
    (11, 0b100000000101),
    (12, 0b1000001010011),
];

/// Error for unsupported field sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedFieldError {
    /// Requested extension degree.
    pub m: u32,
}

impl fmt::Display for UnsupportedFieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GF(2^{}) is not supported (3 ≤ m ≤ 12)", self.m)
    }
}

impl std::error::Error for UnsupportedFieldError {}

/// The field GF(2^m). Cheap to clone (tables behind an [`Arc`]).
///
/// # Examples
///
/// ```
/// use ropuf_ecc::Gf2m;
///
/// let f = Gf2m::new(4).unwrap();
/// let a = f.alpha_pow(3);
/// assert_eq!(f.mul(a, f.inv(a)), 1);
/// ```
#[derive(Clone)]
pub struct Gf2m {
    m: u32,
    size: u32,
    poly: u32,
    exp: Arc<Vec<u32>>,
    log: Arc<Vec<u32>>,
}

impl Gf2m {
    /// Constructs GF(2^m) with the standard primitive polynomial.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedFieldError`] for `m` outside 3..=12.
    pub fn new(m: u32) -> Result<Self, UnsupportedFieldError> {
        let &(_, poly) = PRIMITIVE_POLYS
            .iter()
            .find(|&&(mm, _)| mm == m)
            .ok_or(UnsupportedFieldError { m })?;
        let size = 1u32 << m;
        let n = size - 1;
        let mut exp = vec![0u32; 2 * n as usize];
        let mut log = vec![0u32; size as usize];
        let mut v: u32 = 1;
        for i in 0..n {
            exp[i as usize] = v;
            log[v as usize] = i;
            v <<= 1;
            if v & size != 0 {
                v ^= poly;
            }
        }
        // Duplicate table to skip a modular reduction in mul.
        for i in 0..n {
            exp[(n + i) as usize] = exp[i as usize];
        }
        Ok(Self {
            m,
            size,
            poly,
            exp: Arc::new(exp),
            log: Arc::new(log),
        })
    }

    /// Extension degree `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order `n = 2^m − 1` (also the natural BCH code
    /// length).
    pub fn order(&self) -> u32 {
        self.size - 1
    }

    /// The defining primitive polynomial (including the leading term).
    pub fn primitive_poly(&self) -> u32 {
        self.poly
    }

    /// `α^e` with `e` reduced mod `2^m − 1`.
    pub fn alpha_pow(&self, e: u64) -> u32 {
        self.exp[(e % self.order() as u64) as usize]
    }

    /// Discrete log base α of a non-zero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` or `a` is out of range.
    pub fn log(&self, a: u32) -> u32 {
        assert!(
            a != 0 && a < self.size,
            "log of zero or out-of-range element"
        );
        self.log[a as usize]
    }

    /// Field addition (XOR).
    pub fn add(&self, a: u32, b: u32) -> u32 {
        a ^ b
    }

    /// Field multiplication.
    ///
    /// # Panics
    ///
    /// Panics if either operand is out of range.
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        assert!(a < self.size && b < self.size, "operand out of range");
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    pub fn inv(&self, a: u32) -> u32 {
        assert!(a != 0, "zero has no inverse");
        let n = self.order();
        self.exp[((n - self.log[a as usize]) % n) as usize]
    }

    /// Division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn div(&self, a: u32, b: u32) -> u32 {
        self.mul(a, self.inv(b))
    }

    /// `a^e` by table lookup.
    pub fn pow(&self, a: u32, e: u64) -> u32 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let n = self.order() as u64;
        self.exp[((self.log[a as usize] as u64 * (e % n)) % n) as usize]
    }

    /// The cyclotomic coset of `i` modulo `2^m − 1`:
    /// `{i, 2i, 4i, …}` — the exponents of the conjugates of `α^i`.
    pub fn cyclotomic_coset(&self, i: u32) -> Vec<u32> {
        let n = self.order();
        let start = i % n;
        let mut coset = vec![start];
        let mut cur = (start * 2) % n;
        while cur != start {
            coset.push(cur);
            cur = (cur * 2) % n;
        }
        coset
    }

    /// The minimal polynomial of `α^i` over GF(2), as a
    /// [`Gf2Poly`](crate::Gf2Poly).
    ///
    /// Computed as `Π_{j ∈ coset(i)} (x − α^j)` with coefficients in
    /// GF(2^m); the product is guaranteed to collapse into {0,1}
    /// coefficients.
    pub fn minimal_polynomial(&self, i: u32) -> crate::Gf2Poly {
        let coset = self.cyclotomic_coset(i);
        // poly[d] = coefficient (in GF(2^m)) of x^d.
        let mut poly: Vec<u32> = vec![1];
        for &j in &coset {
            let root = self.alpha_pow(j as u64);
            // Multiply by (x + root).
            let mut next = vec![0u32; poly.len() + 1];
            for (d, &c) in poly.iter().enumerate() {
                next[d + 1] ^= c; // x * c
                next[d] ^= self.mul(c, root); // root * c
            }
            poly = next;
        }
        crate::Gf2Poly::from_coeffs(poly.iter().map(|&c| {
            debug_assert!(c <= 1, "minimal polynomial coefficient not in GF(2)");
            c == 1
        }))
    }
}

impl fmt::Debug for Gf2m {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2m(2^{}, poly {:#b})", self.m, self.poly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_supported_fields_build() {
        for m in 3..=12 {
            let f = Gf2m::new(m).unwrap();
            assert_eq!(f.order(), (1 << m) - 1);
        }
        assert!(Gf2m::new(2).is_err());
        assert!(Gf2m::new(13).is_err());
    }

    #[test]
    fn alpha_generates_whole_group() {
        let f = Gf2m::new(5).unwrap();
        let mut seen = std::collections::HashSet::new();
        for e in 0..f.order() {
            seen.insert(f.alpha_pow(e as u64));
        }
        assert_eq!(seen.len(), f.order() as usize);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn mul_inverse_identity() {
        let f = Gf2m::new(6).unwrap();
        for a in 1..=f.order() {
            assert_eq!(f.mul(a, f.inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn mul_associative_sample() {
        let f = Gf2m::new(4).unwrap();
        for a in 0..16 {
            for b in 0..16 {
                for c in 0..16 {
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributivity_sample() {
        let f = Gf2m::new(4).unwrap();
        for a in 0..16 {
            for b in 0..16 {
                for c in 0..16 {
                    assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = Gf2m::new(5).unwrap();
        let a = f.alpha_pow(7);
        let mut acc = 1;
        for e in 0..10u64 {
            assert_eq!(f.pow(a, e), acc, "e = {e}");
            acc = f.mul(acc, a);
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn cyclotomic_cosets_of_gf16() {
        let f = Gf2m::new(4).unwrap();
        assert_eq!(f.cyclotomic_coset(1), vec![1, 2, 4, 8]);
        assert_eq!(f.cyclotomic_coset(3), vec![3, 6, 12, 9]);
        assert_eq!(f.cyclotomic_coset(5), vec![5, 10]);
    }

    #[test]
    fn minimal_polynomials_of_gf16() {
        let f = Gf2m::new(4).unwrap();
        // m1(x) = x⁴+x+1 (the primitive polynomial itself)
        assert_eq!(
            f.minimal_polynomial(1),
            crate::Gf2Poly::from_coeff_bits(0b10011)
        );
        // m3(x) = x⁴+x³+x²+x+1
        assert_eq!(
            f.minimal_polynomial(3),
            crate::Gf2Poly::from_coeff_bits(0b11111)
        );
        // m5(x) = x²+x+1
        assert_eq!(
            f.minimal_polynomial(5),
            crate::Gf2Poly::from_coeff_bits(0b111)
        );
    }

    #[test]
    fn minimal_polynomial_annihilates_its_root() {
        let f = Gf2m::new(6).unwrap();
        for i in [1u32, 3, 5, 7, 9] {
            let mp = f.minimal_polynomial(i);
            // Evaluate mp at α^i over GF(2^m).
            let root = f.alpha_pow(i as u64);
            let mut acc = 0u32;
            for d in 0..=mp.degree().unwrap() {
                if mp.coeff(d) {
                    acc ^= f.pow(root, d as u64);
                }
            }
            assert_eq!(acc, 0, "m_{i}(α^{i}) != 0");
        }
    }
}
