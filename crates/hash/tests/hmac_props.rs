//! Property tests pinning the HMAC fast path to the reference path.
//!
//! The serving stack verifies every authentication tag through a
//! cached [`HmacKey`] midstate; these properties guarantee the cache
//! is pure optimization — for arbitrary key and message lengths
//! (including the >64-byte hash-the-key-first branch and every block
//! boundary), the cached path, the one-shot path, and an incremental
//! re-derivation all agree bit-for-bit.

use proptest::collection::vec;
use proptest::prelude::*;
use ropuf_hash::{hmac_sha256, sha256, HmacKey, Sha256};

proptest! {
    /// Cached midstates == one-shot HMAC for arbitrary inputs.
    #[test]
    fn cached_midstate_equals_oneshot(
        key in vec(any::<u8>(), 0..200),
        message in vec(any::<u8>(), 0..300),
    ) {
        let cached = HmacKey::new(&key);
        prop_assert_eq!(cached.tag(&message), hmac_sha256(&key, &message));
    }

    /// One precomputed key serves many messages identically to
    /// re-deriving the schedule per message.
    #[test]
    fn one_key_many_messages(
        key in vec(any::<u8>(), 0..150),
        messages in vec(vec(any::<u8>(), 0..120), 1..8),
    ) {
        let cached = HmacKey::new(&key);
        for message in &messages {
            prop_assert_eq!(cached.tag(message), hmac_sha256(&key, message));
        }
    }

    /// HMAC against the RFC 2104 formula spelled out with the raw
    /// hasher: H((k ^ opad) || H((k ^ ipad) || m)).
    #[test]
    fn matches_rfc_formula(
        key in vec(any::<u8>(), 0..200),
        message in vec(any::<u8>(), 0..300),
    ) {
        let mut block = [0u8; 64];
        if key.len() > 64 {
            block[..32].copy_from_slice(&sha256(&key));
        } else {
            block[..key.len()].copy_from_slice(&key);
        }
        let mut inner = Sha256::new();
        inner.update(&block.map(|b| b ^ 0x36));
        inner.update(&message);
        let mut outer = Sha256::new();
        outer.update(&block.map(|b| b ^ 0x5c));
        outer.update(&inner.finalize());
        prop_assert_eq!(outer.finalize(), hmac_sha256(&key, &message));
    }

    /// The rolling-schedule compressor agrees with itself across every
    /// way of splitting the input stream (exercises buffered partial
    /// blocks around the unrolled path).
    #[test]
    fn sha256_split_invariance(
        data in vec(any::<u8>(), 0..200),
        split_seed in any::<u64>(),
    ) {
        let reference = sha256(&data);
        let split = if data.is_empty() { 0 } else { (split_seed % data.len() as u64) as usize };
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), reference);
    }

    /// Tag verification accepts exactly the matching tag.
    #[test]
    fn verify_matches_equality(
        key in vec(any::<u8>(), 0..100),
        message in vec(any::<u8>(), 0..100),
        flip_byte in 0usize..32,
        flip_bit in 0u8..8,
    ) {
        let cached = HmacKey::new(&key);
        let mut tag = cached.tag(&message);
        prop_assert!(cached.verify(&message, &tag));
        tag[flip_byte] ^= 1 << flip_bit;
        prop_assert!(!cached.verify(&message, &tag));
    }
}
