//! HMAC-SHA256 (RFC 2104).

use crate::sha256::Sha256;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use ropuf_hash::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tag.iter().map(|b| format!("{b:02x}")).collect::<String>(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        let digest = crate::sha256::sha256(key);
        key_block[..32].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
