//! HMAC-SHA256 (RFC 2104), with a precomputed-midstate fast path.
//!
//! The key schedule of HMAC — hashing the ipad- and opad-masked key
//! blocks — depends only on the key, yet the naive formulation redoes
//! both compressions for every message. [`HmacKey`] computes the two
//! midstates once; [`HmacKey::tag`] then clones them (a stack copy)
//! per message, halving the compression count for short messages.
//! This is what lets the verifier authenticate a device without
//! re-deriving the key schedule on every request.

use crate::sha256::Sha256;

/// A precomputed HMAC-SHA256 key schedule: the inner (ipad) and outer
/// (opad) SHA-256 midstates, computed once per key.
///
/// Tagging a message clones the midstates — a fixed-size stack copy,
/// no allocation — so a cached `HmacKey` turns per-message cost from
/// "4 compressions + key masking" into "2 compressions" for messages
/// that fit one block.
///
/// # Examples
///
/// ```
/// use ropuf_hash::{hmac_sha256, HmacKey};
///
/// let key = HmacKey::new(b"key");
/// let msg = b"The quick brown fox jumps over the lazy dog";
/// assert_eq!(key.tag(msg), hmac_sha256(b"key", msg));
/// ```
#[derive(Clone)]
pub struct HmacKey {
    /// SHA-256 state after absorbing `key_block ^ ipad`.
    inner: Sha256,
    /// SHA-256 state after absorbing `key_block ^ opad`.
    outer: Sha256,
}

/// Opaque on purpose: the midstates are forgery-equivalent to the key
/// (anyone holding both can tag arbitrary messages), so they must
/// never leak through a `{:?}` log or panic message.
impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacKey").finish_non_exhaustive()
    }
}

impl HmacKey {
    /// Precomputes the key schedule. Keys longer than the 64-byte
    /// SHA-256 block are hashed first, per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; 64];
        if key.len() > 64 {
            let digest = crate::sha256::sha256(key);
            key_block[..32].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        Self { inner, outer }
    }

    /// `HMAC-SHA256(key, message)` from the cached midstates.
    pub fn tag(&self, message: &[u8]) -> [u8; 32] {
        let mut inner = self.inner.clone();
        inner.update(message);
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// `true` when `tag` is the HMAC of `message` under this key.
    /// Constant-time over the tag bytes: the comparison inspects all
    /// 32 bytes regardless of where the first mismatch sits, so a
    /// network attacker cannot binary-search a valid tag through
    /// response timing.
    pub fn verify(&self, message: &[u8], tag: &[u8; 32]) -> bool {
        let expected = self.tag(message);
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// Computes `HMAC-SHA256(key, message)` in one shot (the reference
/// path: the full key schedule is re-derived per call — cache an
/// [`HmacKey`] instead when the key repeats).
///
/// # Examples
///
/// ```
/// use ropuf_hash::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     tag.iter().map(|b| format!("{b:02x}")).collect::<String>(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    HmacKey::new(key).tag(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn cached_midstate_is_reusable_across_messages() {
        let key = HmacKey::new(b"reused-key");
        for len in [0usize, 1, 55, 56, 63, 64, 65, 200] {
            let msg = vec![0x5Au8; len];
            assert_eq!(key.tag(&msg), hmac_sha256(b"reused-key", &msg), "len {len}");
        }
    }

    #[test]
    fn verify_accepts_only_the_right_tag() {
        let key = HmacKey::new(b"k");
        let mut tag = key.tag(b"m");
        assert!(key.verify(b"m", &tag));
        tag[0] ^= 1;
        assert!(!key.verify(b"m", &tag));
        assert!(!key.verify(b"other", &key.tag(b"m")));
    }

    #[test]
    fn long_key_midstate_matches_oneshot() {
        let key_bytes = [0xAAu8; 131];
        let key = HmacKey::new(&key_bytes);
        assert_eq!(key.tag(b"msg"), hmac_sha256(&key_bytes, b"msg"));
    }
}
