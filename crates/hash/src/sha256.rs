//! SHA-256 (FIPS 180-4) with an incremental API.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use ropuf_hash::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), ropuf_hash::sha256(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        // Length block bypasses total_len accounting (already captured).
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, s) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&s.to_be_bytes());
        }
        out
    }

    /// One compression over a 64-byte block with a rolling 16-word
    /// message schedule: `w` holds only the live window instead of the
    /// classic 256-byte expansion, and the 64 rounds run as 8 unrolled
    /// groups of 8 so the working variables never rotate through a
    /// shift chain. Hot path of every HMAC verification — the whole
    /// function is stack-only.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 16];
        for (i, word) in w.iter_mut().enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        /// One round with explicit variable roles — instantiated with the
        /// variables rotated at the call site, so the compiler keeps all
        /// eight in registers with no shuffling between rounds.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $k:expr, $wi:expr) => {
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ (!$e & $g);
                let temp1 = $h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add($k)
                    .wrapping_add($wi);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(temp1);
                $h = temp1.wrapping_add(s0.wrapping_add(maj));
            };
        }

        /// Eight rounds (one full rotation of the working variables)
        /// against schedule words `base..base + 8`.
        macro_rules! octet {
            ($base:expr) => {
                round!(a, b, c, d, e, f, g, h, K[$base], w[$base % 16]);
                round!(h, a, b, c, d, e, f, g, K[$base + 1], w[($base + 1) % 16]);
                round!(g, h, a, b, c, d, e, f, K[$base + 2], w[($base + 2) % 16]);
                round!(f, g, h, a, b, c, d, e, K[$base + 3], w[($base + 3) % 16]);
                round!(e, f, g, h, a, b, c, d, K[$base + 4], w[($base + 4) % 16]);
                round!(d, e, f, g, h, a, b, c, K[$base + 5], w[($base + 5) % 16]);
                round!(c, d, e, f, g, h, a, b, K[$base + 6], w[($base + 6) % 16]);
                round!(b, c, d, e, f, g, h, a, K[$base + 7], w[($base + 7) % 16]);
            };
        }

        /// Advances the rolling schedule window by 16 words in place.
        macro_rules! expand {
            () => {
                for i in 0..16usize {
                    let w15 = w[(i + 1) % 16];
                    let w2 = w[(i + 14) % 16];
                    let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
                    let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
                    w[i] = w[i]
                        .wrapping_add(s0)
                        .wrapping_add(w[(i + 9) % 16])
                        .wrapping_add(s1);
                }
            };
        }

        octet!(0);
        octet!(8);
        expand!();
        octet!(16);
        octet!(24);
        expand!();
        octet!(32);
        octet!(40);
        expand!();
        octet!(48);
        octet!(56);

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_all_split_points() {
        let data: Vec<u8> = (0..200u8).collect();
        let reference = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), reference, "split {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Padding edge cases: 55, 56, 63, 64, 65 bytes.
        for len in [55usize, 56, 63, 64, 65] {
            let data = vec![0x5au8; len];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
    }
}
