//! SHA-256 and HMAC-SHA256, implemented from scratch (FIPS 180-4 /
//! RFC 2104).
//!
//! Two consumers in the workspace:
//!
//! * the **fuzzy extractor** reference construction (paper Section VII-A)
//!   compresses the noisy, non-uniform PUF response into a uniform key with
//!   a hash;
//! * the **device oracle** models "observable application behavior" by
//!   emitting an HMAC tag over an attacker-chosen nonce under the
//!   reconstructed key — the weakest observable consistent with the paper's
//!   attack model.
//!
//! # Examples
//!
//! ```
//! use ropuf_hash::sha256;
//!
//! let digest = sha256(b"abc");
//! assert_eq!(
//!     hex(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! # fn hex(bytes: &[u8]) -> String {
//! #     bytes.iter().map(|b| format!("{b:02x}")).collect()
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hmac;
pub mod sha256;

pub use hmac::{hmac_sha256, HmacKey};
pub use sha256::{sha256, Sha256};
