//! Criterion benches for the campaign engine: fleet sweep throughput at
//! 1 worker vs all cores, and the early-exit query-saving path.

use criterion::{criterion_group, criterion_main, Criterion};
use ropuf_campaign::{AttackKind, Campaign, FleetSpec};
use ropuf_constructions::pairing::lisa::LisaConfig;
use ropuf_sim::ArrayDims;
use std::hint::black_box;

fn campaign(threads: usize, early_exit: bool) -> Campaign {
    Campaign {
        attack: AttackKind::Lisa(LisaConfig::default()),
        fleet: FleetSpec {
            dims: ArrayDims::new(16, 8),
            devices: 8,
            master_seed: 3,
        },
        threads,
        early_exit,
        detector: None,
    }
}

fn bench_campaign(c: &mut Criterion) {
    c.bench_function("campaign_lisa_8dev_serial", |b| {
        b.iter(|| black_box(campaign(1, false).run()))
    });
    c.bench_function("campaign_lisa_8dev_parallel", |b| {
        b.iter(|| black_box(campaign(0, false).run()))
    });
    c.bench_function("campaign_lisa_8dev_parallel_early_exit", |b| {
        b.iter(|| black_box(campaign(0, true).run()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_campaign
}
criterion_main!(benches);
