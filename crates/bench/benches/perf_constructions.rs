//! Criterion benches for enrollment and reconstruction of every
//! construction — the device-side cost the attacks amortize over
//! thousands of queries.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_constructions::cooperative::{CooperativeConfig, CooperativeScheme};
use ropuf_constructions::fuzzy::{FuzzyConfig, FuzzyExtractorScheme};
use ropuf_constructions::group::{GroupBasedConfig, GroupBasedScheme};
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme};
use ropuf_constructions::HelperDataScheme;
use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
    let schemes: Vec<Box<dyn HelperDataScheme>> = vec![
        Box::new(LisaScheme::new(LisaConfig::default())),
        Box::new(GroupBasedScheme::new(GroupBasedConfig::default())),
        Box::new(CooperativeScheme::new(CooperativeConfig::default())),
        Box::new(FuzzyExtractorScheme::new(FuzzyConfig::default())),
    ];
    for scheme in &schemes {
        c.bench_function(&format!("enroll_{}", scheme.name()), |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(4);
                black_box(scheme.enroll(black_box(&array), &mut r).unwrap())
            })
        });
        let mut r = StdRng::seed_from_u64(5);
        let e = scheme.enroll(&array, &mut r).unwrap();
        c.bench_function(&format!("reconstruct_{}", scheme.name()), |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(6);
                black_box(
                    scheme
                        .reconstruct(black_box(&array), &e.helper, Environment::nominal(), &mut r)
                        .unwrap(),
                )
            })
        });
    }
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
