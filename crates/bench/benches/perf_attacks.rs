//! Criterion benches for full attack runs (wall-clock cost of key
//! recovery against the simulated device).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_attacks::lisa::LisaAttack;
use ropuf_attacks::Oracle;
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme};
use ropuf_constructions::Device;
use ropuf_sim::{ArrayDims, RoArrayBuilder};
use std::hint::black_box;

fn bench_lisa_attack(c: &mut Criterion) {
    let config = LisaConfig::default();
    c.bench_function("attack_lisa_full_key_recovery_16x8", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
            let mut device =
                Device::provision(array, Box::new(LisaScheme::new(config)), 8).unwrap();
            let mut oracle = Oracle::new(&mut device);
            black_box(LisaAttack::new(config).run(&mut oracle, &mut rng).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lisa_attack
}
criterion_main!(benches);
