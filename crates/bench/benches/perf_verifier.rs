//! Criterion benches for the verifier serving path: single vs batched
//! authentication, and batched serving at 1 vs 8 shards.

use criterion::{criterion_group, criterion_main, Criterion};
use ropuf_campaign::FleetSpec;
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
use ropuf_constructions::DeviceResponse;
use ropuf_sim::ArrayDims;
use ropuf_verifier::{auth_key, client_tag, AuthRequest, DetectorConfig, Verifier};
use std::hint::black_box;

/// Serving-shaped thresholds: real integrity + tag work per auth, rate
/// budget opened so repeated bench iterations are not flagged as a
/// burst.
fn serving_config() -> DetectorConfig {
    DetectorConfig {
        integrity_check: true,
        rate_window: 64,
        rate_budget: u32::MAX,
        failure_streak: 4,
    }
}

fn build(shards: usize, devices: usize) -> (Verifier, Vec<AuthRequest>) {
    let spec = FleetSpec {
        dims: ArrayDims::new(16, 8),
        devices,
        master_seed: 5,
    };
    let scheme = LisaScheme::new(LisaConfig::default());
    let verifier = Verifier::new(shards, serving_config());
    let mut requests = Vec::new();
    for id in 0..devices {
        let device = spec
            .provision_device(id, &scheme)
            .expect("enrollable fleet");
        verifier
            .enroll(id as u64, LISA_TAG, device.helper(), device.enrolled_key())
            .unwrap();
        let digest = auth_key(device.enrolled_key());
        for k in 0..16u64 {
            let nonce = format!("bench-{id}-{k}").into_bytes();
            requests.push(AuthRequest {
                device_id: id as u64,
                now: k,
                nonce: nonce.clone(),
                response: DeviceResponse::Tag(client_tag(&digest, &nonce)),
                presented_helper: Some(device.helper().to_vec()),
            });
        }
    }
    (verifier, requests)
}

fn bench_verifier(c: &mut Criterion) {
    let (v1, reqs) = build(1, 16);
    let (v8, _) = build(8, 16);

    c.bench_function("auth_single_8shards", |b| {
        b.iter(|| black_box(v8.authenticate(&reqs[0])))
    });
    c.bench_function("auth_batch256_1shard", |b| {
        b.iter(|| black_box(v1.authenticate_batch(&reqs)))
    });
    c.bench_function("auth_batch256_8shards", |b| {
        b.iter(|| black_box(v8.authenticate_batch(&reqs)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_verifier
}
criterion_main!(benches);
