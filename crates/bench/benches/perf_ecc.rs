//! Criterion benches for the ECC substrate: BCH encode/decode and the
//! parity-helper correction path the attacks hammer.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ropuf_constructions::ecc_helper::ParityHelper;
use ropuf_ecc::{BchCode, BinaryCode};
use ropuf_numeric::BitVec;
use std::hint::black_box;

fn bench_bch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    for (m, t) in [(5u32, 3usize), (7, 5)] {
        let code = BchCode::new(m, t).unwrap();
        let msg = BitVec::from_bools((0..code.k()).map(|_| rng.random()));
        let cw = code.encode(&msg);
        let mut noisy = cw.clone();
        for i in 0..t {
            noisy.flip(i * 3 + 1);
        }
        c.bench_function(&format!("bch_encode_n{}_t{t}", code.n()), |b| {
            b.iter(|| black_box(code.encode(black_box(&msg))))
        });
        c.bench_function(&format!("bch_decode_clean_n{}_t{t}", code.n()), |b| {
            b.iter(|| black_box(code.decode(black_box(&cw)).unwrap()))
        });
        c.bench_function(&format!("bch_decode_t_errors_n{}_t{t}", code.n()), |b| {
            b.iter(|| black_box(code.decode(black_box(&noisy)).unwrap()))
        });
    }
}

fn bench_parity_helper(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let ecc = ParityHelper::new(64, 3).unwrap();
    let reference = BitVec::from_bools((0..64).map(|_| rng.random()));
    let parity = ecc.parity(&reference);
    let mut noisy = reference.clone();
    noisy.flip(10);
    noisy.flip(40);
    c.bench_function("parity_helper_correct_64b_2err", |b| {
        b.iter(|| black_box(ecc.correct(black_box(&noisy), black_box(&parity)).unwrap()))
    });
}

criterion_group!(benches, bench_bch, bench_parity_helper);
criterion_main!(benches);
