//! Shared helpers for the figure/table regeneration binaries and the
//! Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_sim::{ArrayDims, RoArray, RoArrayBuilder};

/// A deterministic device array for the harness binaries.
pub fn standard_array(seed: u64, dims: ArrayDims) -> RoArray {
    let mut rng = StdRng::seed_from_u64(seed);
    RoArrayBuilder::new(dims).build(&mut rng)
}

/// Prints a standard experiment header.
pub fn header(id: &str, claim: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Parsed command-line flags of the form `--name value` or bare
/// `--switch` (shared across the harness binaries; no external argument
/// parser in the offline crate set).
#[derive(Debug, Clone, Default)]
pub struct Flags {
    entries: Vec<(String, Option<String>)>,
}

impl Flags {
    /// The raw value of `--name value`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// `true` when `--name` appeared (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// `--name value` parsed as `usize`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value is not an integer.
    pub fn get_usize(&self, name: &str) -> Option<usize> {
        self.get(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
        })
    }

    /// `--name value` parsed as `u64`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value is not an integer.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        self.get(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
        })
    }

    /// The value of `--name`, panicking when the flag appeared without
    /// one (use for flags where silently skipping would lose work, e.g.
    /// artifact output paths).
    ///
    /// # Panics
    ///
    /// Panics when `--name` was given value-less.
    pub fn get_required_value(&self, name: &str) -> Option<&str> {
        if !self.has(name) {
            return None;
        }
        match self.get(name) {
            Some(v) => Some(v),
            None => panic!("--{name} requires a value"),
        }
    }

    /// Rejects flags outside `known`, so a typo fails loudly instead of
    /// silently running with defaults. Call once after [`parse_flags`].
    ///
    /// # Panics
    ///
    /// Panics naming the unknown flag and the accepted set.
    pub fn expect_known(&self, known: &[&str]) {
        for (name, _) in &self.entries {
            assert!(
                known.contains(&name.as_str()),
                "unknown flag --{name}; accepted: {}",
                known
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
    }
}

/// Parses `std::env::args` into [`Flags`]: `--name value`, `--name=value`
/// or bare `--switch` (a following token starting with `--` leaves the
/// flag value-less).
pub fn parse_flags() -> Flags {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut entries = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if let Some((name, value)) = name.split_once('=') {
                entries.push((name.to_string(), Some(value.to_string())));
            } else {
                let value = args.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                entries.push((name.to_string(), value));
            }
        } else {
            panic!(
                "unexpected positional argument {:?}; flags look like --name value",
                args[i]
            );
        }
        i += 1;
    }
    Flags { entries }
}

/// Writes a campaign artifact (JSON/CSV) to `path`, creating parent
/// directories, and logs the destination.
///
/// # Panics
///
/// Panics when the path is not writable — artifacts are the point of
/// the run, so failing loudly beats succeeding silently.
pub fn write_artifact(path: &str, content: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
        }
    }
    std::fs::write(path, content).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} ({} bytes)", content.len());
}

#[cfg(test)]
mod tests {
    use super::Flags;

    #[test]
    fn flag_lookup() {
        let flags = Flags {
            entries: vec![
                ("devices".into(), Some("32".into())),
                ("early-exit".into(), None),
                ("seed".into(), Some("7".into())),
            ],
        };
        assert_eq!(flags.get_usize("devices"), Some(32));
        assert_eq!(flags.get_u64("seed"), Some(7));
        assert!(flags.has("early-exit"));
        assert!(!flags.has("json"));
        assert_eq!(flags.get("json"), None);
        assert_eq!(flags.get_required_value("json"), None);
        flags.expect_known(&["devices", "early-exit", "seed"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag --devcies")]
    fn unknown_flag_is_rejected() {
        let flags = Flags {
            entries: vec![("devcies".into(), Some("32".into()))],
        };
        flags.expect_known(&["devices"]);
    }

    #[test]
    #[should_panic(expected = "--json requires a value")]
    fn valueless_artifact_flag_panics() {
        let flags = Flags {
            entries: vec![("json".into(), None)],
        };
        flags.get_required_value("json");
    }
}
