//! Shared helpers for the figure/table regeneration binaries and the
//! Criterion benches.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_sim::{ArrayDims, RoArray, RoArrayBuilder};

/// A deterministic device array for the harness binaries.
pub fn standard_array(seed: u64, dims: ArrayDims) -> RoArray {
    let mut rng = StdRng::seed_from_u64(seed);
    RoArrayBuilder::new(dims).build(&mut rng)
}

/// Prints a standard experiment header.
pub fn header(id: &str, claim: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper claim: {claim}");
    println!("================================================================");
}
