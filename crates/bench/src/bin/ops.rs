//! `ropuf-ops`: a live operations console for a running ropuf server.
//!
//! ```text
//! ropuf-ops --attach HOST:PORT [--interval-ms N] [--duration-s S]
//!           [--once] [--top K] [--json PATH] [--client-p999-us U]
//!           [--assert-waits] [--min-attribution-pct P]
//! ```
//!
//! Attaches over the ordinary `ropuf-wire/v1` protocol — no side
//! channel, no server cooperation beyond the scrape requests every
//! client already has — and on each interval pulls the three
//! observability surfaces: `MetricsSnapshot` (totals), `TraceDump`
//! (slow-request ring), and `TimeSeriesDump` (the in-server history
//! ring). Successive scrapes are diffed into rates and rendered as a
//! text dashboard:
//!
//! * per-phase throughput/mean-latency table (`ready-wait`, `decode`,
//!   `handle`, `flush`, `flush-wait`) from the interval's histogram
//!   deltas;
//! * per-loop/per-worker utilization (busy-ns over wall-ns) and
//!   out-buffer high-water marks;
//! * a latency heatmap from the server's own time-series ring (bands
//!   are powers of two in microseconds, newest column on the right);
//! * the top-K slowest traced requests with full five-phase
//!   attribution.
//!
//! The tail-attribution summary answers the question the dashboard
//! exists for: *of the slowest requests' latency, how much was spent
//! waiting* (ready-wait + flush-wait) *rather than working* (decode +
//! handle + flush)? `--client-p999-us` anchors the tail cut at a
//! client-observed p999 from a prior `loadgen` run; without it the
//! slowest decile of the trace ring is used.
//!
//! `--json PATH` writes a `ropuf-bench-ops/v1` artifact.
//! `--assert-waits` (CI) asserts the wait-phase histograms are being
//! fed; `--min-attribution-pct P` asserts the tail is at least `P`
//! percent wait-attributed.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use ropuf_bench::parse_flags;
use ropuf_server::{Client, TcpTransport};
use ropuf_telemetry::{
    band_floor_us, MetricValue, Snapshot, TimeSeriesSnapshot, TraceRecord, TraceSnapshot,
    LATENCY_BANDS, SERIES_PHASES,
};

/// Intensity ramp for heatmap cells (index 0 = empty).
const DENSITY: &[u8] = b" .:-=+*#%@";

/// One attached scrape of all three observability surfaces.
#[derive(Clone)]
struct Scrape {
    at: Instant,
    metrics: Snapshot,
    trace: TraceSnapshot,
    series: TimeSeriesSnapshot,
}

fn scrape(client: &mut Client<TcpTransport>) -> Result<Scrape, String> {
    let at = Instant::now();
    let metrics = client.metrics().map_err(|e| e.to_string())?;
    let trace = client.trace_dump().map_err(|e| e.to_string())?;
    let series = client.timeseries().map_err(|e| e.to_string())?;
    Ok(Scrape {
        at,
        metrics,
        trace,
        series,
    })
}

/// Sum of every gauge named `name`, across label sets.
fn gauge_total(s: &Snapshot, name: &str) -> u64 {
    s.metrics
        .iter()
        .filter(|m| m.name == name)
        .filter_map(|m| match m.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        })
        .sum()
}

/// Per-label-set values of every counter named `name`, rendered as
/// `"value1/value2"` keys (most resilience counters carry one label).
fn counter_breakdown(s: &Snapshot, name: &str) -> Vec<(String, u64)> {
    s.metrics
        .iter()
        .filter(|m| m.name == name)
        .filter_map(|m| match m.value {
            MetricValue::Counter(v) => Some((
                m.labels
                    .iter()
                    .map(|(_, v)| v.clone())
                    .collect::<Vec<_>>()
                    .join("/"),
                v,
            )),
            _ => None,
        })
        .collect()
}

/// The resilience line: overload sheds (per shed class, with the
/// interval rate), read-only degraded-mode transitions, and injected
/// faults (chaos runs) — the counters a chaos-hardened server answers
/// "is it degrading gracefully?" with.
fn render_resilience(prev: &Snapshot, cur: &Snapshot, dt: f64) -> String {
    let shed = cur.counter_total("server.shed");
    let degraded = cur.counter_total("server.degraded_transitions");
    let faults = cur.counter_total("faults.injected");
    if shed == 0 && degraded == 0 && faults == 0 {
        return "resilience: no sheds, no degraded transitions, no injected faults\n".to_string();
    }
    let breakdown = |name: &str| {
        let parts = counter_breakdown(cur, name)
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k} {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        if parts.is_empty() {
            String::new()
        } else {
            format!(" [{parts}]")
        }
    };
    let shed_rate = shed.saturating_sub(prev.counter_total("server.shed")) as f64 / dt;
    format!(
        "resilience: shed {shed}{} ({shed_rate:.0}/s) | degraded transitions {degraded} | faults injected {faults}{}\n",
        breakdown("server.shed"),
        breakdown("faults.injected"),
    )
}

/// Aggregate (count, sum-ns) per lifecycle phase, across message types
/// and backends, indexed by [`SERIES_PHASES`].
fn phase_totals(s: &Snapshot) -> [(u64, u128); SERIES_PHASES.len()] {
    let mut out = [(0u64, 0u128); SERIES_PHASES.len()];
    for m in &s.metrics {
        if m.name != "server.request.phase_ns" {
            continue;
        }
        let Some(phase) = m
            .labels
            .iter()
            .find(|(k, _)| k == "phase")
            .map(|(_, v)| v.as_str())
        else {
            continue;
        };
        let Some(slot) = SERIES_PHASES.iter().position(|p| *p == phase) else {
            continue;
        };
        if let MetricValue::Histogram(h) = &m.value {
            out[slot].0 += h.count;
            out[slot].1 += h.sum;
        }
    }
    out
}

/// One loop/worker lane's saturation counters.
struct Lane {
    worker: String,
    busy_ns: u64,
    wall_ns: u64,
    out_highwater: u64,
}

fn lanes(s: &Snapshot) -> Vec<Lane> {
    let mut out: Vec<Lane> = Vec::new();
    let label = |m: &ropuf_telemetry::MetricSample, key: &str| {
        m.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    for m in &s.metrics {
        let value = match m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v,
            MetricValue::Histogram(_) => continue,
        };
        let slot = match m.name.as_str() {
            "server.worker.busy_ns" => 0,
            "server.worker.wall_ns" => 1,
            "server.worker.out_highwater_bytes" => 2,
            _ => continue,
        };
        let worker = label(m, "worker");
        let lane = match out.iter_mut().find(|l| l.worker == worker) {
            Some(lane) => lane,
            None => {
                out.push(Lane {
                    worker,
                    busy_ns: 0,
                    wall_ns: 0,
                    out_highwater: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        match slot {
            0 => lane.busy_ns += value,
            1 => lane.wall_ns += value,
            _ => lane.out_highwater = lane.out_highwater.max(value),
        }
    }
    out.sort_by(|a, b| {
        (a.worker.len(), a.worker.as_str()).cmp(&(b.worker.len(), b.worker.as_str()))
    });
    out
}

fn pct(part: u128, whole: u128) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

fn density_char(count: u64, max: u64) -> char {
    if count == 0 || max == 0 {
        return DENSITY[0] as char;
    }
    // ceil(count * steps / max): the densest cell always renders the
    // top of the ramp, a single sample the bottom.
    let steps = (DENSITY.len() - 1) as u64;
    let level = (count.saturating_mul(steps)).div_ceil(max).clamp(1, steps);
    DENSITY[level as usize] as char
}

/// Latency heatmap from the server's time-series ring: one column per
/// point (newest right), one row per power-of-two microsecond band
/// (slowest on top), intensity scaled to the densest visible cell.
fn render_heatmap(series: &TimeSeriesSnapshot, width: usize) -> String {
    let points = &series.points[series.points.len().saturating_sub(width)..];
    if points.is_empty() {
        return "latency heatmap: no time-series points sampled yet\n".to_string();
    }
    let top_band = points
        .iter()
        .flat_map(|p| {
            p.latency
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(b, _)| b)
        })
        .max()
        .unwrap_or(0);
    let max_cell = points
        .iter()
        .flat_map(|p| p.latency.iter().copied())
        .max()
        .unwrap_or(0);
    let mut out = format!(
        "latency heatmap ({} point(s) x {} band(s), cell max {} request(s), newest right):\n",
        points.len(),
        top_band + 1,
        max_cell,
    );
    for band in (0..=top_band.min(LATENCY_BANDS - 1)).rev() {
        let row: String = points
            .iter()
            .map(|p| density_char(p.latency[band], max_cell))
            .collect();
        out.push_str(&format!(">={:>6} us |{row}|\n", band_floor_us(band)));
    }
    out
}

/// Where the tail cut came from, how many traces fell above it, and
/// how their latency splits across the five phases.
struct Attribution {
    source: &'static str,
    cutoff_us: u64,
    tail: usize,
    phase_pct: [f64; SERIES_PHASES.len()],
    /// ready-wait + flush-wait: latency attributed to *waiting*.
    wait_pct: f64,
}

/// Attributes the tail of the trace ring to lifecycle phases. The tail
/// is every record at or above the client-observed p999 when given
/// (falling back to the single slowest record if none clears it),
/// otherwise the slowest decile of the ring.
fn attribute_tail(records: &[TraceRecord], client_p999_us: Option<u64>) -> Option<Attribution> {
    if records.is_empty() {
        return None;
    }
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    let (source, tail) = match client_p999_us {
        Some(p999) => {
            let cut = p999.saturating_mul(1_000);
            let n = sorted.iter().take_while(|r| r.total_ns >= cut).count();
            ("client-p999", n.max(1))
        }
        None => ("top-decile", (sorted.len() / 10).max(1)),
    };
    let sorted = &sorted[..tail];
    let sums = [
        sorted.iter().map(|r| u128::from(r.ready_ns)).sum::<u128>(),
        sorted.iter().map(|r| u128::from(r.decode_ns)).sum(),
        sorted.iter().map(|r| u128::from(r.handle_ns)).sum(),
        sorted.iter().map(|r| u128::from(r.flush_ns)).sum(),
        sorted.iter().map(|r| u128::from(r.flush_wait_ns)).sum(),
    ];
    let total: u128 = sorted.iter().map(|r| u128::from(r.total_ns)).sum();
    let phase_pct = sums.map(|s| pct(s, total));
    Some(Attribution {
        source,
        cutoff_us: sorted.last().expect("tail >= 1").total_ns / 1_000,
        tail,
        phase_pct,
        wait_pct: phase_pct[0] + phase_pct[4],
    })
}

fn render_traces(records: &[TraceRecord], top: usize) -> String {
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    sorted.truncate(top);
    let mut out = format!(
        "top {} slow trace(s):\n{:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}\n",
        sorted.len(),
        "seq",
        "msg",
        "total_us",
        "ready",
        "decode",
        "handle",
        "flush",
        "fl-wait",
        "worker"
    );
    for r in sorted {
        out.push_str(&format!(
            "{:>6} {:>#6x} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>6}\n",
            r.seq,
            r.msg_type,
            r.total_ns as f64 / 1e3,
            r.ready_ns as f64 / 1e3,
            r.decode_ns as f64 / 1e3,
            r.handle_ns as f64 / 1e3,
            r.flush_ns as f64 / 1e3,
            r.flush_wait_ns as f64 / 1e3,
            r.worker,
        ));
    }
    out
}

/// One full dashboard frame from a pair of successive scrapes.
fn render(
    attach: &str,
    tick: u64,
    prev: &Scrape,
    cur: &Scrape,
    top: usize,
    client_p999_us: Option<u64>,
) -> String {
    let dt = cur.at.duration_since(prev.at).as_secs_f64().max(1e-9);
    let rate = |name: &str| {
        let d = cur
            .metrics
            .counter_total(name)
            .saturating_sub(prev.metrics.counter_total(name));
        d as f64 / dt
    };
    let mut out = format!(
        "── ropuf-ops @ {attach} — frame {tick}, {:.2} s window ──\n",
        dt
    );
    out.push_str(&format!(
        "requests {} ({:.0}/s) | accepted {} ({:.0}/s) | open {} | evicted {} | traces {} | points {}\n",
        cur.metrics.counter_total("server.requests"),
        rate("server.requests"),
        cur.metrics.counter_total("server.connections.accepted"),
        rate("server.connections.accepted"),
        gauge_total(&cur.metrics, "server.connections.open"),
        cur.metrics.counter_total("server.evicted"),
        cur.trace.recorded,
        cur.series.sampled,
    ));
    out.push_str(&render_resilience(&prev.metrics, &cur.metrics, dt));

    let prev_phases = phase_totals(&prev.metrics);
    let cur_phases = phase_totals(&cur.metrics);
    out.push_str(&format!(
        "{:>12} {:>12} {:>12} {:>12}\n",
        "phase", "rate/s", "mean_us", "share%"
    ));
    let window_ns: u128 = cur_phases
        .iter()
        .zip(&prev_phases)
        .map(|(c, p)| c.1 - p.1)
        .sum();
    for (slot, phase) in SERIES_PHASES.iter().enumerate() {
        let dcount = cur_phases[slot].0 - prev_phases[slot].0;
        let dsum = cur_phases[slot].1 - prev_phases[slot].1;
        out.push_str(&format!(
            "{:>12} {:>12.0} {:>12.1} {:>12.1}\n",
            phase,
            dcount as f64 / dt,
            if dcount == 0 {
                0.0
            } else {
                dsum as f64 / dcount as f64 / 1e3
            },
            pct(dsum, window_ns),
        ));
    }

    let prev_lanes = lanes(&prev.metrics);
    out.push_str("workers:");
    for lane in lanes(&cur.metrics) {
        let (pbusy, pwall) = prev_lanes
            .iter()
            .find(|p| p.worker == lane.worker)
            .map_or((0, 0), |p| (p.busy_ns, p.wall_ns));
        out.push_str(&format!(
            " [{} {:.1}% busy, hw {} B]",
            lane.worker,
            pct(
                u128::from(lane.busy_ns.saturating_sub(pbusy)),
                u128::from(lane.wall_ns.saturating_sub(pwall)),
            ),
            lane.out_highwater,
        ));
    }
    out.push('\n');
    out.push_str(&render_heatmap(&cur.series, 48));
    out.push_str(&render_traces(&cur.trace.records, top));
    match attribute_tail(&cur.trace.records, client_p999_us) {
        Some(a) => out.push_str(&format!(
            "tail attribution ({} trace(s), {} cut >= {} us): \
             wait {:.1}% (ready-wait {:.1}% + flush-wait {:.1}%) | \
             decode {:.1}% | handle {:.1}% | flush {:.1}%\n",
            a.tail,
            a.source,
            a.cutoff_us,
            a.wait_pct,
            a.phase_pct[0],
            a.phase_pct[4],
            a.phase_pct[1],
            a.phase_pct[2],
            a.phase_pct[3],
        )),
        None => out.push_str("tail attribution: trace ring empty\n"),
    }
    out
}

fn artifact_json(
    attach: &str,
    interval: Duration,
    scrapes: u64,
    prev: &Scrape,
    cur: &Scrape,
    top: usize,
    client_p999_us: Option<u64>,
) -> String {
    let dt = cur.at.duration_since(prev.at).as_secs_f64().max(1e-9);
    let prev_phases = phase_totals(&prev.metrics);
    let cur_phases = phase_totals(&cur.metrics);
    let phases = SERIES_PHASES
        .iter()
        .enumerate()
        .map(|(slot, phase)| {
            let (count, sum) = cur_phases[slot];
            let dcount = count - prev_phases[slot].0;
            format!(
                "\"{}\": {{\"count\": {count}, \"total_ns\": {sum}, \"rate_per_s\": {:.1}, \"mean_us\": {:.1}}}",
                phase.replace('-', "_"),
                dcount as f64 / dt,
                if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64 / 1e3
                },
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let prev_lanes = lanes(&prev.metrics);
    let workers = lanes(&cur.metrics)
        .iter()
        .map(|lane| {
            let (pbusy, pwall) = prev_lanes
                .iter()
                .find(|p| p.worker == lane.worker)
                .map_or((0, 0), |p| (p.busy_ns, p.wall_ns));
            format!(
                "{{\"worker\": \"{}\", \"busy_pct\": {:.1}, \"out_highwater_bytes\": {}}}",
                lane.worker,
                pct(
                    u128::from(lane.busy_ns.saturating_sub(pbusy)),
                    u128::from(lane.wall_ns.saturating_sub(pwall)),
                ),
                lane.out_highwater,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let breakdown_json = |name: &str| {
        counter_breakdown(&cur.metrics, name)
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let resilience = format!(
        "{{\"shed\": {}, \"shed_by_class\": {{{}}}, \"degraded_transitions\": {}, \"faults_injected\": {{{}}}}}",
        cur.metrics.counter_total("server.shed"),
        breakdown_json("server.shed"),
        cur.metrics.counter_total("server.degraded_transitions"),
        breakdown_json("faults.injected"),
    );
    let mut band_totals = [0u64; LATENCY_BANDS];
    for p in &cur.series.points {
        for (slot, c) in p.latency.iter().enumerate() {
            band_totals[slot] += c;
        }
    }
    let bands = band_totals
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let mut sorted: Vec<&TraceRecord> = cur.trace.records.iter().collect();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    sorted.truncate(top);
    let traces = sorted
        .iter()
        .map(|r| {
            format!(
                "    {{\"seq\": {}, \"msg_type\": {}, \"worker\": {}, \"total_ns\": {}, \
                 \"ready_ns\": {}, \"decode_ns\": {}, \"handle_ns\": {}, \"flush_ns\": {}, \
                 \"flush_wait_ns\": {}}}",
                r.seq,
                r.msg_type,
                r.worker,
                r.total_ns,
                r.ready_ns,
                r.decode_ns,
                r.handle_ns,
                r.flush_ns,
                r.flush_wait_ns,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let tail = match attribute_tail(&cur.trace.records, client_p999_us) {
        Some(a) => format!(
            "{{\"source\": \"{}\", \"cutoff_us\": {}, \"tail_traces\": {}, \
             \"wait_attribution_pct\": {:.1}, \"phase_pct\": {{\"ready_wait\": {:.1}, \
             \"decode\": {:.1}, \"handle\": {:.1}, \"flush\": {:.1}, \"flush_wait\": {:.1}}}}}",
            a.source,
            a.cutoff_us,
            a.tail,
            a.wait_pct,
            a.phase_pct[0],
            a.phase_pct[1],
            a.phase_pct[2],
            a.phase_pct[3],
            a.phase_pct[4],
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": \"ropuf-bench-ops/v1\",\n  \"attach\": \"{attach}\",\n  \"scrapes\": {scrapes},\n  \"interval_ms\": {},\n  \"client_p999_us\": {},\n  \"requests_total\": {},\n  \"open_connections\": {},\n  \"phases\": {{{phases}}},\n  \"workers\": [{workers}],\n  \"resilience\": {resilience},\n  \"timeseries\": {{\"sampled\": {}, \"returned\": {}, \"interval_ns\": {}, \"band_totals\": [{bands}]}},\n  \"trace\": {{\"recorded\": {}, \"dropped\": {}, \"returned\": {}}},\n  \"tail\": {tail},\n  \"top_traces\": [\n{traces}\n  ]\n}}\n",
        interval.as_millis(),
        client_p999_us.map_or("null".to_string(), |v| v.to_string()),
        cur.metrics.counter_total("server.requests"),
        gauge_total(&cur.metrics, "server.connections.open"),
        cur.series.sampled,
        cur.series.points.len(),
        cur.series.interval_ns,
        cur.trace.recorded,
        cur.trace.dropped,
        cur.trace.records.len(),
    )
}

fn connect_with_retry(addr: SocketAddr) -> Client<TcpTransport> {
    // A loadgen peer builds its traffic plan and enrolls the fleet
    // before binding the server, which can take tens of seconds at
    // bench scale — keep knocking.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match TcpTransport::connect(addr) {
            Ok(transport) => {
                let mut client = Client::new(transport);
                client.hello("ropuf-ops").expect("ops handshake");
                return client;
            }
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not attach to {addr} within 120 s: {e}"
                );
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn main() {
    let flags = parse_flags();
    flags.expect_known(&[
        "attach",
        "interval-ms",
        "duration-s",
        "once",
        "top",
        "json",
        "client-p999-us",
        "assert-waits",
        "min-attribution-pct",
    ]);
    let attach = flags
        .get("attach")
        .expect("--attach HOST:PORT is required (the server's fixed --port)")
        .to_string();
    let addr: SocketAddr = attach.parse().expect("--attach expects HOST:PORT");
    let interval = Duration::from_millis(flags.get_u64("interval-ms").unwrap_or(1_000).max(10));
    let duration = Duration::from_secs(flags.get_u64("duration-s").unwrap_or(10));
    let once = flags.has("once");
    let top = flags.get_usize("top").unwrap_or(8);
    let client_p999_us = flags.get_u64("client-p999-us");
    let assert_waits = flags.has("assert-waits");
    let min_attribution = flags.get_u64("min-attribution-pct");

    let mut client = connect_with_retry(addr);
    let mut prev = scrape(&mut client).expect("first scrape");
    let deadline = Instant::now() + duration;
    let mut tick = 0u64;
    let mut last_pair: Option<(Scrape, Scrape)> = None;
    loop {
        // Take the first follow-up scrape quickly so a pair exists for
        // the gates and artifact even when the attached run finishes
        // within one interval (short CI workloads in release finish in
        // well under a second); later ticks use the full cadence.
        std::thread::sleep(if last_pair.is_none() {
            interval.min(Duration::from_millis(50))
        } else {
            interval
        });
        match scrape(&mut client) {
            Ok(cur) => {
                tick += 1;
                print!(
                    "{}",
                    render(&attach, tick, &prev, &cur, top, client_p999_us)
                );
                last_pair = Some((prev, cur.clone()));
                prev = cur;
            }
            Err(e) => {
                eprintln!("ropuf-ops: server went away ({e}); rendering final state");
                break;
            }
        }
        if once || (!duration.is_zero() && Instant::now() >= deadline) {
            break;
        }
    }
    let (first, last) = last_pair.expect("never completed a scrape pair — server died too early");

    if assert_waits {
        let phases = phase_totals(&last.metrics);
        for (slot, phase) in SERIES_PHASES.iter().enumerate() {
            assert!(
                phases[slot].0 > 0,
                "phase histogram {phase} is empty — queue-wait attribution is not being fed"
            );
        }
        assert!(
            last.metrics.counter_total("server.requests")
                > first.metrics.counter_total("server.requests"),
            "no requests served across the scrape window"
        );
        assert!(
            last.series.sampled > 0,
            "time-series sampler never cut a point"
        );
        assert!(last.trace.recorded > 0, "slow-request trace ring is empty");
        println!("assert-waits: all wait phases fed, sampler live, traces present — ok");
    }
    if let Some(min_pct) = min_attribution {
        let a = attribute_tail(&last.trace.records, client_p999_us)
            .expect("attribution gate needs a non-empty trace ring");
        assert!(
            a.wait_pct >= min_pct as f64,
            "tail wait-attribution {:.1}% below the required {min_pct}% \
             ({} trace(s) at {} cut)",
            a.wait_pct,
            a.tail,
            a.source,
        );
        println!(
            "attribution gate: {:.1}% of the {} tail is wait time (>= {min_pct}%) — ok",
            a.wait_pct, a.source
        );
    }
    if let Some(path) = flags.get_required_value("json") {
        let artifact = artifact_json(&attach, interval, tick, &first, &last, top, client_p999_us);
        ropuf_bench::write_artifact(path, &artifact);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_telemetry::SeriesPoint;

    fn record(total: u64, ready: u64, flush_wait: u64) -> TraceRecord {
        let work = total - ready - flush_wait;
        TraceRecord {
            seq: 0,
            msg_type: 0x03,
            device_hash: 1,
            ready_ns: ready,
            decode_ns: 0,
            handle_ns: work,
            flush_ns: 0,
            flush_wait_ns: flush_wait,
            total_ns: total,
            worker: 0,
        }
    }

    #[test]
    fn attribution_splits_waits_from_work() {
        // Ten records; the slowest (the top decile) is 90% wait.
        let mut records = vec![record(1_000, 0, 0); 9];
        records.push(record(100_000, 80_000, 10_000));
        let a = attribute_tail(&records, None).expect("non-empty");
        assert_eq!(a.source, "top-decile");
        assert_eq!(a.tail, 1);
        assert_eq!(a.cutoff_us, 100);
        assert!((a.wait_pct - 90.0).abs() < 1e-9);
        assert!((a.phase_pct[0] - 80.0).abs() < 1e-9);
        assert!((a.phase_pct[4] - 10.0).abs() < 1e-9);
        assert!((a.phase_pct[2] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_cuts_at_the_client_p999() {
        let records = vec![
            record(2_000_000, 1_900_000, 0),
            record(3_000_000, 2_900_000, 50_000),
            record(10_000, 0, 0),
        ];
        // 1 ms client p999: both millisecond-scale records are tail.
        let a = attribute_tail(&records, Some(1_000)).expect("non-empty");
        assert_eq!(a.source, "client-p999");
        assert_eq!(a.tail, 2);
        assert!(a.wait_pct > 90.0);
        // A p999 nothing clears still attributes the single slowest.
        let a = attribute_tail(&records, Some(60_000_000)).expect("non-empty");
        assert_eq!(a.tail, 1);
        assert_eq!(a.cutoff_us, 3_000);
        assert!(attribute_tail(&[], Some(1)).is_none());
    }

    #[test]
    fn resilience_line_breaks_sheds_and_faults_down_by_label() {
        let registry = ropuf_telemetry::Registry::new();
        let quiet = registry.snapshot();
        let text = render_resilience(&quiet, &quiet, 1.0);
        assert!(text.contains("no sheds"), "quiet server: {text}");

        registry
            .counter("server.shed", &[("class", "scrape")])
            .add(9);
        registry
            .counter("server.shed", &[("class", "verdict")])
            .add(3);
        registry
            .counter("faults.injected", &[("kind", "wal_append")])
            .inc();
        registry.counter("server.degraded_transitions", &[]).inc();
        let loud = registry.snapshot();
        let text = render_resilience(&quiet, &loud, 2.0);
        assert!(text.contains("shed 12"), "{text}");
        assert!(text.contains("scrape 9"), "{text}");
        assert!(text.contains("verdict 3"), "{text}");
        assert!(text.contains("(6/s)"), "12 sheds over 2 s: {text}");
        assert!(text.contains("degraded transitions 1"), "{text}");
        assert!(text.contains("faults injected 1 [wal_append 1]"), "{text}");
    }

    #[test]
    fn density_ramp_is_monotone_and_bounded() {
        assert_eq!(density_char(0, 100), ' ');
        assert_eq!(density_char(5, 0), ' ');
        assert_eq!(density_char(100, 100), '@');
        let mut last = 0usize;
        for c in (1..=100).map(|n| density_char(n, 100)) {
            let level = DENSITY.iter().position(|&d| d as char == c).expect("ramp");
            assert!(level >= last.min(1), "never back to empty");
            assert!(level >= 1);
            last = level;
        }
    }

    #[test]
    fn heatmap_renders_bands_up_to_the_slowest() {
        let mut point = SeriesPoint::default();
        point.latency[0] = 3;
        point.latency[9] = 1;
        let series = TimeSeriesSnapshot {
            sampled: 1,
            interval_ns: 250_000_000,
            points: vec![point],
        };
        let text = render_heatmap(&series, 48);
        assert!(text.contains(">=   512 us"), "band 9 row present:\n{text}");
        assert!(text.contains(">=     0 us"), "band 0 row present:\n{text}");
        assert!(!text.contains(">= 32768 us"), "empty top bands skipped");
        let empty = render_heatmap(&TimeSeriesSnapshot::default(), 48);
        assert!(empty.contains("no time-series points"));
    }
}
