//! Verifier serving throughput: batched, sharded authentication across
//! shard counts.
//!
//! ```text
//! perf_verifier [--devices D] [--auths A] [--threads T] [--batch B] [--seed S]
//! ```
//!
//! A fixed fleet is enrolled once (one `enroll_batch` call); the same
//! pre-recorded request stream (valid tags, enrolled helpers — the
//! integrity check does full digest work per auth) is then replayed
//! through verifiers with 1, 2, 4, 8 and 16 shards by `T` serving
//! threads in batches of `B`. With one registry-wide lock (1 shard)
//! the serving threads serialize; per-shard locks let them proceed in
//! parallel, so throughput should grow with the shard count on a
//! multicore host (on a single core the effect shrinks to reduced
//! contention overhead). Per-batch serving latency is recorded into
//! per-thread log-bucketed `Histogram`s (merged after the run), so the
//! table reports tail percentiles, not just wall-clock division.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use ropuf_bench::parse_flags;
use ropuf_campaign::FleetSpec;
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
use ropuf_constructions::DeviceResponse;
use ropuf_numeric::Histogram;
use ropuf_sim::ArrayDims;
use ropuf_verifier::{
    auth_key, client_tag, AuthRequest, BatchEnrollment, DetectorConfig, Verifier,
};

/// One enrolled credential: what the registry stores, plus the helper
/// clients present.
struct Credential {
    device_id: u64,
    helper: Vec<u8>,
    key_digest: [u8; 32],
}

fn main() {
    let flags = parse_flags();
    flags.expect_known(&["devices", "auths", "threads", "batch", "seed"]);
    let devices = flags.get_usize("devices").unwrap_or(64);
    let auths = flags.get_usize("auths").unwrap_or(8192);
    let batch = flags.get_usize("batch").unwrap_or(64).max(1);
    let master_seed = flags.get_u64("seed").unwrap_or(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = match flags.get_usize("threads") {
        Some(0) | None => cores.max(4), // force contention even on small hosts
        Some(t) => t,
    };

    ropuf_bench::header(
        "PERF — batched sharded authentication throughput",
        "per-shard locking lets concurrent serving threads scale with the shard count instead of serializing on one registry mutex",
    );

    // Serving thresholds: integrity + tag verification do real work per
    // auth; the rate budget is opened up so a throughput replay is not
    // (correctly!) flagged as an attack burst.
    let config = DetectorConfig {
        integrity_check: true,
        rate_window: 64,
        rate_budget: u32::MAX,
        failure_streak: 4,
    };

    // Enroll once, reuse the records for every shard count.
    let spec = FleetSpec {
        dims: ArrayDims::new(16, 8),
        devices,
        master_seed,
    };
    let scheme = LisaScheme::new(LisaConfig::default());
    let t0 = Instant::now();
    let credentials: Vec<Credential> = (0..devices)
        .filter_map(|id| match spec.provision_device(id, &scheme) {
            Ok(device) => Some(Credential {
                device_id: id as u64,
                helper: device.helper().to_vec(),
                key_digest: auth_key(device.enrolled_key()),
            }),
            Err(_) => None,
        })
        .collect();
    println!(
        "fleet: {} lisa devices provisioned + enrolled in {:.0} ms",
        credentials.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Pre-record the request stream: round-robin over devices, valid
    // tags computed the way a genuine client would. Every request
    // carries the same logical timestamp: serving threads claim chunks
    // in nondeterministic order, and the detector requires per-device
    // timestamps to be non-decreasing — a constant clock satisfies that
    // under any interleaving (the rate detector is deliberately out of
    // the throughput measurement anyway, see `rate_budget` above).
    let requests: Vec<AuthRequest> = (0..auths)
        .map(|i| {
            let cred = &credentials[i % credentials.len()];
            let nonce = (i as u64).to_le_bytes().to_vec();
            AuthRequest {
                device_id: cred.device_id,
                now: 0,
                nonce: nonce.clone(),
                response: DeviceResponse::Tag(client_tag(&cred.key_digest, &nonce)),
                presented_helper: Some(cred.helper.clone()),
            }
        })
        .collect();

    println!(
        "replaying {} auths, {} serving threads, batches of {}, on {} core(s):\n",
        requests.len(),
        threads,
        batch,
        cores
    );
    println!(
        "{:>7} {:>12} {:>12} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "shards",
        "wall ms",
        "auths/sec",
        "vs 1 shard",
        "batch p50us",
        "batch p99us",
        "p999us",
        "accepted"
    );

    let mut baseline: Option<f64> = None;
    for shards in [1usize, 2, 4, 8, 16] {
        let verifier = Verifier::new(shards, config);
        let enrolled = verifier.enroll_batch(
            credentials
                .iter()
                .map(|cred| BatchEnrollment {
                    device_id: cred.device_id,
                    scheme_tag: LISA_TAG,
                    helper: cred.helper.clone(),
                    key_digest: cred.key_digest,
                })
                .collect(),
        );
        assert!(
            enrolled.iter().all(Result::is_ok),
            "fresh registry cannot collide"
        );

        let cursor = AtomicUsize::new(0);
        let accepted = AtomicUsize::new(0);
        let chunks: Vec<&[AuthRequest]> = requests.chunks(batch).collect();
        let (tx, rx) = mpsc::channel::<Histogram>();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cursor = &cursor;
                let accepted = &accepted;
                let chunks = &chunks;
                let verifier = &verifier;
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut latencies = Histogram::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= chunks.len() {
                            break;
                        }
                        let b0 = Instant::now();
                        let ok = verifier
                            .authenticate_batch(chunks[i])
                            .iter()
                            .filter(|v| v.is_accept())
                            .count();
                        latencies.record(b0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                        accepted.fetch_add(ok, Ordering::Relaxed);
                    }
                    tx.send(latencies).expect("collector alive");
                });
            }
            drop(tx);
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut latencies = Histogram::new();
        for h in rx {
            latencies.merge(&h);
        }
        let throughput = requests.len() as f64 / (wall_ms / 1e3);
        let speedup = baseline.map_or(1.0, |b| throughput / b);
        if baseline.is_none() {
            baseline = Some(throughput);
        }
        let s = latencies.summary();
        println!(
            "{:>7} {:>12.1} {:>12.0} {:>13.2}x {:>12.1} {:>12.1} {:>12.1} {:>10}",
            shards,
            wall_ms,
            throughput,
            speedup,
            s.p50 as f64 / 1e3,
            s.p99 as f64 / 1e3,
            s.p999 as f64 / 1e3,
            accepted.load(Ordering::Relaxed),
        );
        assert_eq!(
            accepted.load(Ordering::Relaxed),
            requests.len(),
            "every replayed auth must verify"
        );
        assert_eq!(
            latencies.count() as usize,
            chunks.len(),
            "one latency sample per served batch"
        );
    }

    if cores > 2 {
        println!("\nexpectation on this multicore host: throughput grows with shard count as lock contention falls");
    } else {
        println!("\nsingle/dual-core host: scaling is limited to contention-overhead reduction here; re-run on a multicore machine for the full effect");
    }
}
