//! Layer-by-layer hot-path benchmark with a machine-readable artifact
//! — the first entry of the repo's perf trajectory.
//!
//! ```text
//! perf_hotpath [--smoke] [--seed S] [--devices D] [--shards M]
//!              [--batch B] [--json PATH]
//! ```
//!
//! Measures each layer of the authentication serving stack in one run,
//! fast path against its in-tree reference path, and writes the
//! results as `BENCH_hotpath.json` (schema `ropuf-bench-hotpath/v1`)
//! so later PRs have a baseline to regress against:
//!
//! 1. **hash** — HMAC-SHA256 tags/s with a cached [`HmacKey`] midstate
//!    vs the one-shot `hmac_sha256` that re-derives the key schedule
//!    per message.
//! 2. **proto** — ns/message for `encode_into` (reused buffer) vs
//!    `encode` (fresh `Vec`), and borrowing `RequestRef::decode` vs
//!    owned `Request::decode`, over a representative authenticate
//!    frame.
//! 3. **verifier** — batched authentication ops/s through the cached
//!    midstate + preallocated-scratch path vs
//!    `authenticate_batch_reference` (full key schedule per request),
//!    same fleet, same run.
//! 4. **sim/oracle** — oracle queries/s through `probe_failures` with
//!    the device's reused measurement scratch.
//!
//! The speedup gates are **asserted**, not just printed: the binary
//! exits nonzero if the cached-HMAC or cached-auth speedups fall below
//! their floors, so CI catches a regression that silently disables the
//! caches.

use std::time::Instant;

use ropuf_attacks::oracle::Probe;
use ropuf_attacks::Oracle;
use ropuf_bench::{parse_flags, write_artifact};
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
use ropuf_constructions::{Device, DeviceResponse};
use ropuf_hash::{hmac_sha256, HmacKey};
use ropuf_proto::{AuthItem, Request, RequestRef, WireAuthResponse};
use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
use ropuf_verifier::{
    client_tag, AuthRequest, BatchScratch, DetectorConfig, EnrollmentRecord, Verifier,
};

/// Schema tag of the artifact this binary writes.
const SCHEMA: &str = "ropuf-bench-hotpath/v1";

/// Times `iters` runs of `f`, returning (ops/s, ns/op).
fn time_ops(iters: usize, mut f: impl FnMut()) -> (f64, f64) {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-12);
    (iters as f64 / secs, secs * 1e9 / iters as f64)
}

/// Deterministic pseudo-random bytes (no RNG dependency needed here).
fn fill_bytes(seed: u64, out: &mut [u8]) {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in out {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = x as u8;
    }
}

fn main() {
    let flags = parse_flags();
    flags.expect_known(&["smoke", "seed", "devices", "shards", "batch", "json"]);
    let smoke = flags.has("smoke");
    let seed = flags.get_u64("seed").unwrap_or(1);
    let devices = flags.get_usize("devices").unwrap_or(64);
    let shards = flags.get_usize("shards").unwrap_or(8);
    let batch = flags.get_usize("batch").unwrap_or(256);
    let json_path = flags
        .get_required_value("json")
        .unwrap_or("BENCH_hotpath.json")
        .to_string();
    // Iteration counts: smoke keeps CI fast but stays well above
    // timer resolution (each measurement runs tens of milliseconds).
    let hmac_iters = if smoke { 200_000 } else { 2_000_000 };
    let codec_iters = if smoke { 50_000 } else { 500_000 };
    let auth_rounds = if smoke { 40 } else { 400 };
    let oracle_trials = if smoke { 400 } else { 4_000 };
    // Speedup floors. The full-run floors are the acceptance bar; the
    // smoke floors keep a guardband for short measurements on noisy
    // shared CI cores without letting a disabled cache slip through.
    let (hmac_floor, auth_floor) = if smoke { (1.3, 1.2) } else { (1.5, 1.5) };

    ropuf_bench::header(
        "PERF_HOTPATH — per-layer serving-stack benchmark",
        "cached HMAC midstates, allocation-free codec and scratch-reusing batch auth keep the request path compute-bound, >=1.5x over the key-schedule-per-request reference",
    );

    // ── 1. hash: cached midstate vs one-shot key schedule ──────────
    let mut key = [0u8; 32];
    fill_bytes(seed, &mut key);
    let mut nonce = [0u8; 32];
    fill_bytes(seed ^ 0xA5A5, &mut nonce);
    let cached_key = HmacKey::new(&key);
    // Fold each tag byte into a sink so the hash work cannot be
    // optimized away.
    let mut sink = 0u64;
    let (hmac_cached_ops, hmac_cached_ns) = time_ops(hmac_iters, || {
        sink = sink.wrapping_add(u64::from(cached_key.tag(&nonce)[0]));
    });
    let (hmac_uncached_ops, hmac_uncached_ns) = time_ops(hmac_iters, || {
        sink = sink.wrapping_add(u64::from(hmac_sha256(&key, &nonce)[0]));
    });
    let hmac_speedup = hmac_cached_ops / hmac_uncached_ops;
    println!("\n[hash] HMAC-SHA256 over a 32-byte nonce ({hmac_iters} iters)");
    println!("  cached midstate : {hmac_cached_ops:>12.0} tags/s  ({hmac_cached_ns:.0} ns/tag)");
    println!(
        "  one-shot        : {hmac_uncached_ops:>12.0} tags/s  ({hmac_uncached_ns:.0} ns/tag)"
    );
    println!("  speedup         : {hmac_speedup:.2}x");

    // ── 2. proto: reused vs allocating encode/decode ───────────────
    let mut helper = vec![0u8; 120];
    fill_bytes(seed ^ 0x0C0DE, &mut helper);
    let item = AuthItem {
        device_id: 42,
        now: 7,
        nonce: nonce.to_vec(),
        response: WireAuthResponse::Tag([9; 32]),
        presented_helper: Some(helper.clone()),
    };
    let request = Request::Authenticate(item);
    let frame = request.encode();
    let mut reused = Vec::new();
    let mut len_sink = 0usize;
    let (_, encode_into_ns) = time_ops(codec_iters, || {
        request.encode_into(&mut reused);
        len_sink = len_sink.wrapping_add(reused.len());
    });
    let (_, encode_alloc_ns) = time_ops(codec_iters, || {
        len_sink = len_sink.wrapping_add(request.encode().len());
    });
    let (_, decode_ref_ns) = time_ops(codec_iters, || {
        let decoded = RequestRef::decode(&frame).expect("valid frame");
        if let RequestRef::Authenticate(item) = decoded {
            len_sink = len_sink.wrapping_add(item.nonce.len());
        }
    });
    let (_, decode_owned_ns) = time_ops(codec_iters, || {
        let decoded = Request::decode(&frame).expect("valid frame");
        if let Request::Authenticate(item) = decoded {
            len_sink = len_sink.wrapping_add(item.nonce.len());
        }
    });
    println!(
        "\n[proto] {}-byte authenticate frame ({codec_iters} iters)",
        frame.len()
    );
    println!("  encode_into (reused buffer) : {encode_into_ns:>8.0} ns/msg");
    println!("  encode (fresh Vec)          : {encode_alloc_ns:>8.0} ns/msg");
    println!("  decode RequestRef (borrow)  : {decode_ref_ns:>8.0} ns/msg");
    println!("  decode Request (owned)      : {decode_owned_ns:>8.0} ns/msg");

    // ── 3. verifier: cached batch auth vs reference key schedule ───
    // Synthetic fleet: credentials only — this layer measures serving,
    // not PUF physics. Detector budgets are opened wide so the
    // measured loop is lookup + HMAC + detector bookkeeping, with no
    // device ever latching into quarantine mid-benchmark.
    let wide_open = DetectorConfig {
        integrity_check: true,
        rate_window: 1,
        rate_budget: u32::MAX,
        failure_streak: u32::MAX,
    };
    let enroll_fleet = |shards: usize| {
        let v = Verifier::new(shards, wide_open);
        for d in 0..devices as u64 {
            let mut digest = [0u8; 32];
            fill_bytes(seed ^ d, &mut digest);
            let mut helper = vec![0u8; 64];
            fill_bytes(seed ^ d ^ 0x48_45_4C_50, &mut helper);
            v.registry()
                .enroll(
                    d,
                    EnrollmentRecord {
                        scheme_tag: LISA_TAG,
                        helper,
                        key_digest: digest,
                    },
                )
                .expect("fresh ids");
        }
        v
    };
    let cached_v = enroll_fleet(shards);
    let reference_v = enroll_fleet(shards);
    // One recorded batch, replayed every round: genuine tags answered
    // with per-request nonces, no presented helper (the integrity
    // digest is a separate signal; this isolates the HMAC serving
    // cost the midstate cache targets).
    let requests: Vec<AuthRequest> = (0..batch)
        .map(|i| {
            let d = (i % devices) as u64;
            let mut digest = [0u8; 32];
            fill_bytes(seed ^ d, &mut digest);
            let mut nonce = vec![0u8; 32];
            fill_bytes(seed ^ (i as u64) << 20, &mut nonce);
            let tag = client_tag(&digest, &nonce);
            AuthRequest {
                device_id: d,
                now: i as u64,
                nonce,
                response: DeviceResponse::Tag(tag),
                presented_helper: None,
            }
        })
        .collect();
    let queries: Vec<_> = requests.iter().map(AuthRequest::as_query).collect();
    let mut scratch = BatchScratch::new();
    let mut verdicts = Vec::new();
    // Warm both paths (first-touch allocations, cache warmup).
    cached_v.authenticate_batch_with(&queries, &mut scratch, &mut verdicts);
    assert!(
        verdicts.iter().all(|v| v.is_accept()),
        "benchmark fleet must authenticate cleanly"
    );
    assert_eq!(
        reference_v.authenticate_batch_reference(&requests),
        verdicts,
        "reference path must agree with the cached path"
    );
    let (_, cached_batch_ns) = time_ops(auth_rounds, || {
        cached_v.authenticate_batch_with(&queries, &mut scratch, &mut verdicts);
    });
    let (_, reference_batch_ns) = time_ops(auth_rounds, || {
        len_sink = len_sink.wrapping_add(reference_v.authenticate_batch_reference(&requests).len());
    });
    let auth_cached_ops = batch as f64 * 1e9 / cached_batch_ns;
    let auth_reference_ops = batch as f64 * 1e9 / reference_batch_ns;
    let auth_speedup = auth_cached_ops / auth_reference_ops;
    println!(
        "\n[verifier] batched auth: {devices} devices, {shards} shards, batch {batch}, {auth_rounds} rounds"
    );
    println!("  cached midstates + scratch : {auth_cached_ops:>12.0} ops/s");
    println!("  reference key schedule     : {auth_reference_ops:>12.0} ops/s");
    println!("  speedup                    : {auth_speedup:.2}x");

    // ── 4. sim/oracle: probe throughput with scratch reuse ─────────
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
    let mut device = Device::provision(
        array,
        Box::new(LisaScheme::new(LisaConfig::default())),
        seed,
    )
    .expect("provision benchmark device");
    let mut oracle = Oracle::new(&mut device);
    let expected = oracle.query_original(Environment::nominal());
    let good = oracle.original_helper().to_vec();
    let probes = [Probe {
        helper: &good,
        expected: &expected,
    }];
    let before = oracle.queries();
    let t0 = Instant::now();
    let failures = oracle.probe_failures(&probes, Environment::nominal(), oracle_trials);
    let oracle_secs = t0.elapsed().as_secs_f64().max(1e-12);
    let oracle_queries = oracle.queries() - before;
    let oracle_qps = oracle_queries as f64 / oracle_secs;
    println!("\n[sim] oracle probe_failures: {oracle_queries} queries (16x8 LISA device)");
    println!("  throughput : {oracle_qps:>12.0} queries/s");
    println!(
        "  failures   : {}/{oracle_trials} (genuine helper)",
        failures[0]
    );

    // ── Artifact ───────────────────────────────────────────────────
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"config\": {{\"seed\": {seed}, \"devices\": {devices}, \"shards\": {shards}, \"batch\": {batch}, \"hmac_iters\": {hmac_iters}, \"codec_iters\": {codec_iters}, \"auth_rounds\": {auth_rounds}, \"oracle_trials\": {oracle_trials}}},\n  \"hash\": {{\"message_len\": 32, \"cached_tags_per_s\": {hmac_cached_ops:.0}, \"oneshot_tags_per_s\": {hmac_uncached_ops:.0}, \"cached_ns_per_tag\": {hmac_cached_ns:.1}, \"oneshot_ns_per_tag\": {hmac_uncached_ns:.1}, \"speedup\": {hmac_speedup:.3}}},\n  \"proto\": {{\"frame_len\": {frame_len}, \"encode_into_ns\": {encode_into_ns:.1}, \"encode_alloc_ns\": {encode_alloc_ns:.1}, \"decode_ref_ns\": {decode_ref_ns:.1}, \"decode_owned_ns\": {decode_owned_ns:.1}}},\n  \"verifier\": {{\"cached_auth_ops_per_s\": {auth_cached_ops:.0}, \"reference_auth_ops_per_s\": {auth_reference_ops:.0}, \"speedup\": {auth_speedup:.3}}},\n  \"sim\": {{\"oracle_queries_per_s\": {oracle_qps:.0}, \"array\": \"16x8\", \"scheme\": \"lisa\"}}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        frame_len = frame.len(),
    );
    write_artifact(&json_path, &json);

    // ── Gates (asserted, so CI fails on a silent cache regression) ─
    std::hint::black_box((sink, len_sink));
    assert!(
        hmac_speedup >= hmac_floor,
        "cached-HMAC speedup {hmac_speedup:.2}x below the {hmac_floor}x floor"
    );
    assert!(
        auth_speedup >= auth_floor,
        "cached batched-auth speedup {auth_speedup:.2}x below the {auth_floor}x floor"
    );
    println!(
        "\nverdict: cached HMAC {hmac_speedup:.2}x (floor {hmac_floor}x), cached batched auth {auth_speedup:.2}x (floor {auth_floor}x) — gates asserted, artifact written."
    );
}
