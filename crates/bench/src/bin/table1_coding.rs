//! Regenerates the paper's **Table I** — coding of the oscillator
//! frequency order for a 4-RO group: all 24 orders with their compact
//! (lexicographic rank) and Kendall codings.

use ropuf_numeric::Permutation;

fn row(rank: u64) -> (String, String, String) {
    let p = Permutation::from_lehmer_rank(rank, 4);
    let compact: String = (0..5)
        .rev()
        .map(|b| if (rank >> b) & 1 == 1 { '1' } else { '0' })
        .collect();
    let kendall: String = p
        .kendall_bits()
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    (p.to_string(), compact, kendall)
}

fn main() {
    ropuf_bench::header(
        "TABLE I — coding of oscillator frequency order",
        "24 orders of {A,B,C,D}; compact = ⌈log2 4!⌉ = 5 bits, Kendall = 6 bits (one per pair)",
    );
    println!(
        "{:<6} {:<8} {:<8} | {:<6} {:<8} {:<8}",
        "Order", "Compact", "Kendall", "Order", "Compact", "Kendall"
    );
    for r in 0..12u64 {
        let (o1, c1, k1) = row(r);
        let (o2, c2, k2) = row(r + 12);
        println!("{o1:<6} {c1:<8} {k1:<8} | {o2:<6} {c2:<8} {k2:<8}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_table1_entries() {
        // Every row of the paper's Table I.
        let expected = [
            ("ABCD", "00000", "000000"),
            ("ABDC", "00001", "000001"),
            ("ACBD", "00010", "000100"),
            ("ACDB", "00011", "000110"),
            ("ADBC", "00100", "000011"),
            ("ADCB", "00101", "000111"),
            ("BACD", "00110", "100000"),
            ("BADC", "00111", "100001"),
            ("BCAD", "01000", "110000"),
            ("BCDA", "01001", "111000"),
            ("BDAC", "01010", "101001"),
            ("BDCA", "01011", "111001"),
            ("CABD", "01100", "010100"),
            ("CADB", "01101", "010110"),
            ("CBAD", "01110", "110100"),
            ("CBDA", "01111", "111100"),
            ("CDAB", "10000", "011110"),
            ("CDBA", "10001", "111110"),
            ("DABC", "10010", "001011"),
            ("DACB", "10011", "001111"),
            ("DBAC", "10100", "101011"),
            ("DBCA", "10101", "111011"),
            ("DCAB", "10110", "011111"),
            ("DCBA", "10111", "111111"),
        ];
        for (r, &(order, compact, kendall)) in expected.iter().enumerate() {
            let (o, c, k) = row(r as u64);
            assert_eq!(
                (o.as_str(), c.as_str(), k.as_str()),
                (order, compact, kendall),
                "rank {r}"
            );
        }
    }
}
