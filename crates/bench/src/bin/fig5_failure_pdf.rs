//! Regenerates the paper's **Fig. 5**: the PDF of the number of errors at
//! the ECC input, for the nominal helper data and for two hypothesis
//! helpers with symmetrically injected errors. H0 and H1 are shifted by
//! the hypothesis-dependent errors and hence distinguishable via the
//! failure rate beyond t.

use rand::SeedableRng;
use ropuf_constructions::ecc_helper::ParityHelper;
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaHelper, LisaScheme};
use ropuf_constructions::{HelperDataScheme, SanityPolicy};
use ropuf_numeric::stats::Histogram;
use ropuf_numeric::BitVec;
use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder, VariationProfile};

fn main() {
    ropuf_bench::header(
        "FIG 5 — error-count PDF at the ECC input: nominal vs H0 vs H1",
        "hypothesis PDFs share a common injected offset and are mutually shifted by the hypothesis bits",
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    // Raise noise so the PDFs have visible width, as in the figure.
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8))
        .profile(VariationProfile::default())
        .noise_sigma_hz(120e3)
        .build(&mut rng);
    let config = LisaConfig {
        ecc_t: 3,
        ..LisaConfig::default()
    };
    let scheme = LisaScheme::new(config);
    let enrollment = scheme.enroll(&array, &mut rng).expect("enroll");
    let parsed = LisaHelper::from_bytes(&enrollment.helper, SanityPolicy::Lenient).expect("parse");
    let p = parsed.pairs.len();
    let ecc = ParityHelper::new(p, config.ecc_t).expect("ecc");

    // Pick an equal pair (H0 swap) and an unequal pair (H1 swap) vs bit 0.
    let key = &enrollment.key;
    let h0_m = (1..p)
        .find(|&m| key.get(m) == key.get(0))
        .expect("equal bit");
    let h1_m = (1..p)
        .find(|&m| key.get(m) != key.get(0))
        .expect("unequal bit");

    // Inject t−1 common errors so the PDFs sit near the bound (paper: a
    // common offset accelerates the attack).
    let inject = config.ecc_t - 1;
    let variants: Vec<(&str, LisaHelper)> = vec![
        ("nominal", parsed.clone()),
        ("H0", {
            let mut h = parsed.clone();
            h.pairs.swap(0, h0_m);
            for i in 0..inject {
                h.parity.flip(i);
            }
            h
        }),
        ("H1", {
            let mut h = parsed.clone();
            h.pairs.swap(0, h1_m);
            for i in 0..inject {
                h.parity.flip(i);
            }
            h
        }),
    ];

    let trials = 3000;
    println!("{trials} reconstructions each; t = {}", config.ecc_t);
    println!(
        "{:>8} {}",
        "errors:",
        (0..=8).map(|e| format!("{e:>7}")).collect::<String>()
    );
    for (name, helper) in variants {
        let mut hist = Histogram::new();
        let mut failures = 0u64;
        for _ in 0..trials {
            // Re-measure the response and count errors vs the stored
            // parity (decoder-input view).
            let mut response = BitVec::new();
            for &(a, b) in &helper.pairs {
                let fa = array.measure(a as usize, Environment::nominal(), &mut rng);
                let fb = array.measure(b as usize, Environment::nominal(), &mut rng);
                response.push(fa > fb);
            }
            match ecc.observed_errors(&response, &helper.parity) {
                Ok(e) => hist.record(e),
                Err(_) => failures += 1,
            }
        }
        print!("{name:>8} ");
        for e in 0..=8usize {
            print!("{:>7.4}", hist.pdf(e));
        }
        let fail_rate = failures as f64 / trials as f64;
        println!("   failure rate (>t): {fail_rate:.4}");
    }
    println!("\nshape check: H1 sits one error to the right of H0; only H1 spills past t.");
}
