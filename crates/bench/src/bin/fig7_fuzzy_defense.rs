//! Regenerates the paper's **Fig. 7 / §VII** comparison: the fuzzy
//! extractor reference. The plain variant silently absorbs injected
//! parity errors (the attack surface); the robust variant rejects every
//! manipulated blob, flattening the failure-rate side channel.

use rand::SeedableRng;
use ropuf_constructions::fuzzy::{FuzzyConfig, FuzzyExtractorScheme, FuzzyHelper};
use ropuf_constructions::{Device, HelperDataScheme};
use ropuf_sim::{ArrayDims, Environment};

fn main() {
    ropuf_bench::header(
        "FIG 7 / §VII — fuzzy extractor vs helper-data manipulation",
        "robust extractor detects all manipulations ⇒ failure rate is hypothesis-independent",
    );
    let dims = ArrayDims::new(16, 8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    for robust in [false, true] {
        let array = ropuf_bench::standard_array(70 + robust as u64, dims);
        let scheme = FuzzyExtractorScheme::new(FuzzyConfig {
            robust,
            ..FuzzyConfig::default()
        });
        // Sanity: functional with genuine helper.
        let e = scheme.enroll(&array, &mut rng).expect("enroll");
        let genuine_ok = scheme
            .reconstruct(&array, &e.helper, Environment::nominal(), &mut rng)
            .is_ok();
        let mut device = Device::provision(
            array,
            Box::new(FuzzyExtractorScheme::new(FuzzyConfig {
                robust,
                ..FuzzyConfig::default()
            })),
            71,
        )
        .expect("provision");
        let helper = device.helper().to_vec();
        let parsed = FuzzyHelper::from_bytes(&helper).expect("parse");
        let trials = 16usize.min(parsed.parity.len());
        let mut rejected = 0;
        for i in 0..trials {
            let mut tampered = parsed.clone();
            tampered.parity.flip(i);
            device.write_helper(tampered.to_bytes());
            if device
                .respond(b"probe", Environment::nominal())
                .is_failure()
            {
                rejected += 1;
            }
        }
        println!(
            "{:>7}: genuine reconstruct ok = {genuine_ok}; {rejected}/{trials} single-bit manipulations rejected",
            if robust { "robust" } else { "plain" },
        );
    }
    println!("\nshape check: plain rejects 0 (errors silently corrected — exploitable), robust rejects all.");
}
