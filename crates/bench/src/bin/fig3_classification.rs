//! Regenerates the paper's **Fig. 3**: classification of RO pairs of a
//! temperature-aware cooperative PUF into good / bad / cooperating, with
//! an example Δf(T) series per class.

use rand::SeedableRng;
use ropuf_constructions::cooperative::{
    classify_pair, CooperativeConfig, CooperativeScheme, PairClass,
};
use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};

fn main() {
    ropuf_bench::header(
        "FIG 3 — temperature-aware pair classification",
        "good: |Δf|>th across range; bad: |Δf|≤th across range; cooperating: crossover interval [Tl, Th]",
    );
    let config = CooperativeConfig::default();
    let scheme = CooperativeScheme::new(config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut counts = [0usize; 3];
    let mut example: [Option<(usize, ropuf_constructions::cooperative::DeltaLine)>; 3] =
        [None, None, None];
    for seed in 0..8u64 {
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        let _ = seed;
        let lines = scheme.measure_lines(&array, &mut rng);
        for (i, (_, line)) in lines.into_iter().enumerate() {
            let idx = match classify_pair(line, config.range, config.delta_f_th) {
                PairClass::Good { .. } => 0,
                PairClass::Bad => 1,
                PairClass::Cooperating { .. } => 2,
            };
            counts[idx] += 1;
            if example[idx].is_none() {
                example[idx] = Some((i, line));
            }
        }
    }
    let total: usize = counts.iter().sum();
    for (name, c) in [
        ("good", counts[0]),
        ("bad", counts[1]),
        ("cooperating", counts[2]),
    ] {
        println!(
            "{name:>12}: {c:>4} pairs ({:.1}%)",
            100.0 * c as f64 / total as f64
        );
    }
    println!("\nexample Δf(T) series per class [kHz]:");
    print!("{:>14}", "T [°C]:");
    let temps: Vec<f64> = Environment::sweep(config.range.min_c, config.range.max_c, 8)
        .map(|env| env.temperature_c)
        .collect();
    for t in &temps {
        print!("{t:>9.1}");
    }
    println!();
    for (name, ex) in [
        ("good", example[0]),
        ("bad", example[1]),
        ("cooperating", example[2]),
    ] {
        if let Some((_, line)) = ex {
            print!("{name:>14}");
            for &t in &temps {
                print!("{:>9.1}", line.at(t) / 1e3);
            }
            println!();
        }
    }
}
