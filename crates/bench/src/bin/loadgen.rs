//! The load generator: mixed benign/LISA traffic against the real
//! serving surface, with throughput and tail-latency reporting.
//!
//! ```text
//! loadgen [--server loopback|blocking|evented] [--devices N]
//!         [--rounds R] [--seed S] [--shards M] [--threads T]
//!         [--workers W] [--loops L] [--busy-poll] [--connections C]
//!         [--churn] [--smoke] [--loopback] [--json PATH] [--telemetry]
//!         [--telemetry-json PATH] [--trace-threshold-us U] [--port P]
//!         [--assert-p999-us U] [--chaos SEED [--fault-rate R]]
//! ```
//!
//! Builds a deterministic [`TrafficPlan`] (first quarter of the fleet:
//! real LISA attack trajectories; the rest: benign authentication
//! across the other three constructions), enrolls the fleet through
//! one shard-partitioned `Verifier::enroll_batch` call, spawns the
//! chosen backend on an ephemeral localhost port, and replays the plan
//! from `T` client threads — each request timed into a per-thread
//! log-bucketed histogram, merged at the end.
//!
//! Connection shapes (TCP backends):
//!
//! * default — one long-lived connection per client thread;
//! * `--connections C` — `C` connections opened up-front and **held
//!   established for the whole replay**, requests round-robined across
//!   them (the many-concurrent-connections shape the evented server
//!   exists for; the blocking pool refuses `C > W` because its workers
//!   own one connection each until EOF);
//! * `--churn` — a fresh connection per device replay (accept/teardown
//!   pressure).
//!
//! `--loops L` sizes the evented backend's event-loop fleet; the
//! default is `min(available_parallelism, 4)` — the committed tail
//! numbers were once silently measured at `loops: 1`, so the resolved
//! value is printed and recorded in the JSON artifact. `--busy-poll`
//! arms each loop's short zero-timeout spin before the blocking wait.
//!
//! In the held-connection evented shape every connection is probed
//! with `LoopInfo` after its handshake and auth traffic is routed
//! loop-affine: a device's requests prefer connections that landed on
//! `shard_for(id, shards) % loops` — the loop whose registry shard
//! owns the device — falling back to plain round-robin when the probe
//! found no connection there. Probe ops are folded into the exact
//! telemetry gate below.
//!
//! `--assert-p999-us U` turns the printed tail into a hard gate: the
//! run aborts when client-observed p999 exceeds `U` microseconds
//! (CI's guardband against tail regressions).
//!
//! Acceptance shape (asserted, not just printed): nonzero throughput,
//! **every** attacked device rejected at the wire with the
//! `DeviceFlagged` error code, **zero** benign devices flagged, and in
//! `--connections` mode every connection established simultaneously
//! (the evented server's gauge is asserted directly).
//!
//! `--json PATH` writes a `ropuf-bench-loadgen/v1` artifact so CI can
//! track the serving-throughput trajectory per run.
//!
//! `--telemetry` (TCP backends only) holds one extra scraper
//! connection that pulls `MetricsSnapshot` off the live server
//! mid-run, then takes a final scrape plus a `TraceDump` after the
//! replay and asserts the server-side `server.requests` counter equals
//! the client-side op count **exactly** — handshakes, auths, verdict
//! queries and the scrapes themselves all accounted for.
//! `--telemetry-json PATH` additionally writes a
//! `ropuf-bench-telemetry/v1` artifact correlating client-observed
//! tail latency with the server's per-phase histograms and slow-request
//! trace ring.
//!
//! `--trace-threshold-us U` sets the server's slow-trace threshold
//! (default under `--telemetry`: 100 µs for full runs, 0 — trace
//! everything — for `--smoke`; the backends' own 1 ms default
//! otherwise). With telemetry enabled the run *asserts* the trace ring
//! is non-empty, so the artifact's slowest-requests section can never
//! silently degenerate to zero traces.
//!
//! `--port P` binds the server to a fixed localhost port so an external
//! observer (`ropuf-ops`) can attach mid-run. External scrapers add
//! their own connections and request frames, so `--port` relaxes the
//! exact-equality telemetry gates to lower bounds (`>=`).
//!
//! `--chaos SEED` switches to the chaos harness (see the [`chaos`]
//! module): the same traffic replayed by resilient retrying clients
//! whose every connection runs through a seeded fault injector
//! (`--fault-rate R` partial-I/O odds per 65536; delays at `R/4`,
//! resets at `R/16`), against an evented server with an armed WAL and
//! live admission control. Writes a `ropuf-bench-chaos/v1` artifact.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use ropuf_bench::parse_flags;
use ropuf_constructions::pairing::lisa::LisaConfig;
use ropuf_numeric::Histogram;
use ropuf_proto::ErrorCode;
use ropuf_server::{
    Client, DeviceTraffic, LoopbackTransport, RequestHandler, Role, TcpServer, TcpTransport,
    TrafficPlan, TrafficSpec, Transport, VerifierHandler,
};
#[cfg(target_os = "linux")]
use ropuf_server::{EventedConfig, EventedServer};
use ropuf_verifier::{shard_for, DetectorConfig, Verifier};

/// `--loops` default: one event loop per available core, capped at 4.
/// Resolved (not hardcoded `1`) because the committed tail numbers
/// were once silently measured single-loop; the chosen value is
/// printed and recorded in the JSON artifact so a run is never
/// ambiguous about its topology.
fn default_loops() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(4))
}

/// Which serving backend replays the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Loopback,
    Blocking,
    Evented,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Loopback => "loopback",
            Backend::Blocking => "blocking",
            Backend::Evented => "evented",
        }
    }
}

/// What one device's replay produced.
struct DeviceOutcome {
    device_id: u64,
    scheme: &'static str,
    role: Role,
    requests: usize,
    accepted: usize,
    rejected: usize,
    /// 0-based request index of the first wire-level `DeviceFlagged`
    /// rejection, if any.
    wire_flagged_at: Option<usize>,
    /// Flag reason label from a post-replay `QueryVerdict`, if flagged.
    flag_reason: Option<String>,
}

/// One replay thread's set of live connections, with optional
/// loop-affine routing (evented held shape).
struct ClientPool<T: Transport> {
    clients: Vec<Client<T>>,
    affinity: Option<PoolAffinity>,
}

/// Routing table from the per-connection `LoopInfo` probe: which pool
/// slots landed on which event loop, plus the shard geometry mapping
/// a device id to its owning loop — `shard_for(id, shards) % loops`,
/// the same arithmetic the server's affinity counters use.
struct PoolAffinity {
    shards: usize,
    loops: usize,
    by_loop: Vec<Vec<usize>>,
}

impl<T: Transport> ClientPool<T> {
    fn plain(clients: Vec<Client<T>>) -> Self {
        Self {
            clients,
            affinity: None,
        }
    }

    /// Picks the pool slot for a device's next request: loop-affine
    /// when the probe found connections on the device's owning loop,
    /// plain round-robin otherwise.
    fn pick(&self, rr: usize, device_id: u64) -> usize {
        if let Some(a) = &self.affinity {
            let owner = shard_for(device_id, a.shards) % a.loops.max(1);
            if let Some(subset) = a.by_loop.get(owner).filter(|s| !s.is_empty()) {
                return subset[rr % subset.len()];
            }
        }
        rr % self.clients.len()
    }
}

/// Replays every request of one device, in order, round-robining the
/// requests across the thread's connection pool (a single-client pool
/// is the classic one-connection-per-thread shape).
fn replay_device<T: Transport>(
    pool: &mut ClientPool<T>,
    rr: &mut usize,
    device: &DeviceTraffic,
    latencies: &mut Histogram,
) -> DeviceOutcome {
    let mut outcome = DeviceOutcome {
        device_id: device.device_id,
        scheme: device.scheme,
        role: device.role,
        requests: device.requests.len(),
        accepted: 0,
        rejected: 0,
        wire_flagged_at: None,
        flag_reason: None,
    };
    for (i, item) in device.requests.iter().enumerate() {
        let slot = pool.pick(*rr, device.device_id);
        let client = &mut pool.clients[slot];
        *rr += 1;
        let t0 = Instant::now();
        // Borrowed replay: the recorded item is encoded straight from
        // the plan's buffers — no per-request clone.
        let result = client.authenticate_ref(item.as_ref());
        latencies.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        match result {
            Ok(verdict) if verdict.is_accept() => outcome.accepted += 1,
            Ok(_) => outcome.rejected += 1,
            Err(e) if e.error_code() == Some(ErrorCode::DeviceFlagged) => {
                if outcome.wire_flagged_at.is_none() {
                    outcome.wire_flagged_at = Some(i);
                }
            }
            Err(e) => panic!("device {}: transport failure: {e}", device.device_id),
        }
    }
    outcome.flag_reason = pool.clients[0]
        .query_verdict(device.device_id)
        .expect("enrolled device must be queryable")
        .map(|(_, reason)| reason.label().to_string());
    outcome
}

/// The shared replay harness: one thread per worker closure, devices
/// handed out through an atomic cursor, per-thread histograms merged
/// at the end. A worker replays one device and returns its outcome;
/// the connection shapes below differ only in how a worker gets its
/// client(s). Returns per-device outcomes (sorted by id) and the
/// merged latency histogram.
fn run_threads<W>(plan: &TrafficPlan, workers: Vec<W>) -> (Vec<DeviceOutcome>, Histogram)
where
    W: FnMut(&DeviceTraffic, &mut Histogram) -> DeviceOutcome + Send,
{
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(Vec<DeviceOutcome>, Histogram)>();
    std::thread::scope(|scope| {
        for mut work in workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || {
                let mut latencies = Histogram::new();
                let mut outcomes = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(device) = plan.devices.get(i) else {
                        break;
                    };
                    outcomes.push(work(device, &mut latencies));
                }
                tx.send((outcomes, latencies)).expect("collector alive");
            });
        }
        drop(tx);
    });
    let mut all = Vec::new();
    let mut merged = Histogram::new();
    for (outcomes, latencies) in rx {
        all.extend(outcomes);
        merged.merge(&latencies);
    }
    all.sort_by_key(|o| o.device_id);
    (all, merged)
}

/// Held/per-thread shapes: each thread owns a fixed pool of live
/// connections for the whole run.
fn run_pools<T: Transport + Send>(
    plan: &TrafficPlan,
    pools: Vec<ClientPool<T>>,
) -> (Vec<DeviceOutcome>, Histogram) {
    let workers = pools
        .into_iter()
        .map(|mut pool| {
            let mut rr = 0usize;
            move |device: &DeviceTraffic, latencies: &mut Histogram| {
                replay_device(&mut pool, &mut rr, device, latencies)
            }
        })
        .collect();
    run_threads(plan, workers)
}

/// Churn shape: every device replay opens (and drops) its own
/// connection — accept-path and teardown pressure instead of held
/// connections.
fn run_churn<T, F>(
    plan: &TrafficPlan,
    threads: usize,
    connect: F,
) -> (Vec<DeviceOutcome>, Histogram)
where
    T: Transport,
    F: Fn() -> Client<T> + Sync,
{
    let connect = &connect;
    let workers = (0..threads.max(1))
        .map(|_| {
            move |device: &DeviceTraffic, latencies: &mut Histogram| {
                let mut pool = ClientPool::plain(vec![connect()]);
                replay_device(&mut pool, &mut 0, device, latencies)
            }
        })
        .collect();
    run_threads(plan, workers)
}

/// Opens `count` TCP connections, completes the handshake on each, and
/// partitions them round-robin into `threads` pools. With `affine`
/// (`(shards, loops)` — the evented backend), every connection is
/// additionally probed with `LoopInfo` so replay can route each
/// device's traffic to a connection on its owning loop. Returns the
/// pools plus the number of probe ops issued (they count toward the
/// exact telemetry gate).
fn open_held_pools(
    addr: std::net::SocketAddr,
    count: usize,
    threads: usize,
    affine: Option<(usize, usize)>,
) -> (Vec<ClientPool<TcpTransport>>, u64) {
    let mut pools: Vec<Vec<Client<TcpTransport>>> =
        (0..threads.max(1)).map(|_| Vec::new()).collect();
    for i in 0..count {
        let mut client =
            Client::new(TcpTransport::connect(addr).unwrap_or_else(|e| {
                panic!("connection {i}/{count} failed: {e} (raise ulimit -n?)")
            }));
        client.hello("loadgen-held").expect("handshake");
        pools[i % threads.max(1)].push(client);
    }
    // Fewer connections than threads leaves trailing pools empty; a
    // pool-less thread has nothing to replay with, so shed it.
    pools.retain(|pool| !pool.is_empty());
    let Some((shards, loops)) = affine else {
        return (pools.into_iter().map(ClientPool::plain).collect(), 0);
    };
    let loops = loops.max(1);
    let mut probe_ops = 0u64;
    let mut per_loop = vec![0u64; loops];
    let pools = pools
        .into_iter()
        .map(|mut clients| {
            let mut by_loop: Vec<Vec<usize>> = vec![Vec::new(); loops];
            for (slot, client) in clients.iter_mut().enumerate() {
                let (loop_id, loops_total) = client.loop_info().expect("LoopInfo probe");
                probe_ops += 1;
                assert_eq!(
                    loops_total as usize, loops,
                    "server must report the configured loop count"
                );
                assert!(
                    (loop_id as usize) < loops,
                    "loop id {loop_id} out of range (loops {loops})"
                );
                per_loop[loop_id as usize] += 1;
                by_loop[loop_id as usize].push(slot);
            }
            ClientPool {
                clients,
                affinity: Some(PoolAffinity {
                    shards,
                    loops,
                    by_loop,
                }),
            }
        })
        .collect();
    println!(
        "loop-affinity probe: {count} held connections per loop [{}]; auth traffic routed to shard_for(id, {shards}) % {loops}",
        per_loop
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    );
    (pools, probe_ops)
}

/// The live mid-run scraper (`--telemetry`): one held connection that
/// pulls `MetricsSnapshot` frames off the server *while the replay
/// hammers it*, proving the scrape path is serveable under load. The
/// connection is opened (and handshaken) synchronously in `start` so
/// held-connection gauge accounting stays deterministic.
struct Scraper {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<u64>,
}

/// What `--telemetry` observed: the final authoritative snapshot, the
/// slow-request trace ring, and how many wire ops the scrape machinery
/// itself issued (they count toward the exact-equality gate).
struct ScrapeReport {
    /// Ops issued by the mid-run scraper connection (hello + scrapes).
    scraper_ops: u64,
    /// Mid-run scrapes that decoded successfully.
    mid_run_scrapes: u64,
    /// Ops issued by the final-scrape connection that land in the
    /// final snapshot (its hello + the final `MetricsSnapshot`; the
    /// `TraceDump` arrives after the snapshot was cut, so it does not).
    final_ops: u64,
    snapshot: ropuf_telemetry::Snapshot,
    trace: ropuf_telemetry::TraceSnapshot,
    timeseries: ropuf_telemetry::TimeSeriesSnapshot,
}

impl Scraper {
    fn start(addr: std::net::SocketAddr) -> Self {
        let mut client = Client::new(TcpTransport::connect(addr).expect("scraper connect"));
        client.hello("loadgen-scraper").expect("scraper handshake");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut ops = 1u64; // the hello above
            while !flag.load(Ordering::Relaxed) {
                let snap = client.metrics().expect("mid-run scrape must decode");
                ops += 1;
                // The scraper's own handshake is already served and
                // timed by the moment this response exists, so phase
                // histograms can never be legitimately empty.
                assert!(
                    snap.histogram_samples("server.request.phase_ns") > 0,
                    "mid-run scrape returned empty phase histograms"
                );
                assert!(
                    snap.counter_total("server.requests") >= ops,
                    "server request counter below the scraper's own ops"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            ops
        });
        Self { stop, thread }
    }

    /// Stops the mid-run loop, then takes the authoritative post-replay
    /// scrape (fresh connection: hello, metrics, trace dump).
    fn finish(self, addr: std::net::SocketAddr) -> ScrapeReport {
        self.stop.store(true, Ordering::Relaxed);
        let scraper_ops = self.thread.join().expect("scraper thread panicked");
        let mut client = Client::new(TcpTransport::connect(addr).expect("final scrape connect"));
        client.hello("loadgen-scraper").expect("final handshake");
        let snapshot = client.metrics().expect("final scrape must decode");
        let trace = client.trace_dump().expect("trace dump must decode");
        let timeseries = client.timeseries().expect("timeseries dump must decode");
        ScrapeReport {
            scraper_ops,
            mid_run_scrapes: scraper_ops - 1,
            // The trace and timeseries dumps arrive after the final
            // metrics snapshot was cut, so they never land in it.
            final_ops: 2,
            snapshot,
            trace,
            timeseries,
        }
    }
}

/// JSON summary of one `server.request.phase_ns` histogram cell
/// (authentication traffic), or `null` when the cell is absent.
fn phase_summary_json(snapshot: &ropuf_telemetry::Snapshot, backend: &str, phase: &str) -> String {
    match snapshot.find(
        "server.request.phase_ns",
        &[("backend", backend), ("msg", "auth"), ("phase", phase)],
    ) {
        Some(ropuf_telemetry::MetricValue::Histogram(h)) => {
            let hist = h
                .to_histogram()
                .expect("server snapshot is self-consistent");
            let s = hist.summary();
            format!(
                "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
                hist.count(),
                s.p50,
                s.p90,
                s.p99,
                s.p999,
                s.max
            )
        }
        _ => "null".to_string(),
    }
}

fn main() {
    let flags = parse_flags();
    flags.expect_known(&[
        "devices",
        "rounds",
        "seed",
        "shards",
        "threads",
        "workers",
        "loops",
        "busy-poll",
        "assert-p999-us",
        "smoke",
        "loopback",
        "server",
        "connections",
        "churn",
        "json",
        "telemetry",
        "telemetry-json",
        "trace-threshold-us",
        "port",
        "chaos",
        "fault-rate",
    ]);
    if flags.get_u64("chaos").is_some() {
        #[cfg(target_os = "linux")]
        {
            chaos::run(&flags);
            return;
        }
        #[cfg(not(target_os = "linux"))]
        panic!("--chaos drives the evented backend and requires Linux (epoll)");
    }
    let smoke = flags.has("smoke");
    let devices = flags
        .get_usize("devices")
        .unwrap_or(if smoke { 8 } else { 32 });
    let rounds = flags
        .get_usize("rounds")
        .unwrap_or(if smoke { 4 } else { 16 });
    let master_seed = flags.get_u64("seed").unwrap_or(1);
    let shards = flags.get_usize("shards").unwrap_or(8);
    let threads = flags
        .get_usize("threads")
        .unwrap_or(if smoke { 2 } else { 4 });
    let mut workers = flags.get_usize("workers").unwrap_or(4);
    let loops = flags.get_usize("loops").unwrap_or_else(default_loops);
    let busy_poll = flags.has("busy-poll");
    let connections = flags.get_usize("connections");
    let churn = flags.has("churn");
    let port = flags.get_usize("port");
    let backend = match flags.get("server") {
        Some("loopback") => Backend::Loopback,
        Some("blocking") => Backend::Blocking,
        Some("evented") => Backend::Evented,
        Some(other) => panic!("--server expects loopback|blocking|evented, got {other:?}"),
        None if flags.has("loopback") => Backend::Loopback,
        None if smoke => Backend::Loopback,
        None => Backend::Blocking,
    };
    let telemetry_json = flags.get_required_value("telemetry-json");
    let telemetry_enabled = flags.has("telemetry") || telemetry_json.is_some();
    // Slow-trace threshold for the server under test. Telemetry runs
    // default low enough that the trace ring is provably non-empty
    // (asserted below); plain runs keep the backends' 1 ms default.
    let trace_threshold = flags
        .get_u64("trace-threshold-us")
        .map(std::time::Duration::from_micros)
        .unwrap_or(if telemetry_enabled && !smoke {
            std::time::Duration::from_micros(100)
        } else if telemetry_enabled {
            std::time::Duration::ZERO
        } else {
            std::time::Duration::from_millis(1)
        });
    if connections.is_some() && backend == Backend::Loopback {
        panic!("--connections needs a TCP backend; pass --server evented (or blocking)");
    }
    if port.is_some() && backend == Backend::Loopback {
        panic!("--port binds a TCP listener; pass --server evented (or blocking)");
    }
    if telemetry_enabled {
        assert!(
            backend != Backend::Loopback,
            "--telemetry scrapes over the wire; pass --server evented (or blocking)"
        );
        if backend == Backend::Blocking && !churn {
            // The blocking pool parks one worker per connection until
            // EOF, and --telemetry holds one extra scraper connection
            // for the whole run: too few workers would deadlock the
            // scrape loop behind the replay pools. Bump instead of
            // dying — the operator asked for telemetry, not a puzzle.
            let held = connections.unwrap_or(threads.max(1));
            let needed = held + 1;
            if workers < needed {
                eprintln!(
                    "loadgen: --telemetry holds a scraper connection on the blocking pool: \
                     {held} replay connections + 1 scraper need {needed} workers; \
                     bumping --workers {workers} -> {needed}"
                );
                workers = needed;
            }
        }
    }
    if churn && connections.is_some() {
        panic!("--churn and --connections are different connection shapes; pick one");
    }
    if let (Backend::Blocking, Some(c)) = (backend, connections) {
        assert!(
            c <= workers,
            "the blocking pool serves one connection per worker until EOF: \
             {c} held connections need >= {c} workers (or --server evented)"
        );
    }

    ropuf_bench::header(
        "LOADGEN — mixed benign/LISA traffic against the serving surface",
        "the wire rejects every attacked device with the DeviceFlagged error code while benign fleets authenticate flag-free at serving speed",
    );

    let detector = DetectorConfig::default();
    let spec = TrafficSpec {
        devices,
        master_seed,
        rounds,
        lisa: LisaConfig::default(),
        detector,
    };
    let t0 = Instant::now();
    let plan = TrafficPlan::build(&spec);
    println!(
        "traffic plan: {} devices ({} attacked, {} benign), {} requests, built in {:.0} ms",
        plan.devices.len(),
        plan.attackers().count(),
        plan.benign().count(),
        plan.total_requests(),
        t0.elapsed().as_secs_f64() * 1e3,
    );

    // One shard-partitioned enrollment call for the whole fleet.
    let verifier = Arc::new(Verifier::new(shards, detector));
    let t0 = Instant::now();
    let enroll_results = verifier.enroll_batch(plan.enrollments());
    assert!(
        enroll_results.iter().all(Result::is_ok),
        "fresh fleet ids cannot collide"
    );
    println!(
        "enrolled {} devices into {} shards via one enroll_batch call in {:.1} ms",
        enroll_results.len(),
        shards,
        t0.elapsed().as_secs_f64() * 1e3,
    );

    let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(Arc::clone(&verifier)));

    /// Post-run server-side counters (evented backend only).
    struct ServerStats {
        accepted: u64,
        requests: u64,
        evicted_idle: u64,
        evicted_slow: u64,
    }

    let t0 = Instant::now();
    let mut server_stats: Option<ServerStats> = None;
    let mut scrape_report: Option<ScrapeReport> = None;
    // A fixed --port invites external observers (ropuf-ops); their
    // connections and scrape frames make exact-equality gates
    // unprovable, so those relax to lower bounds below.
    let bind_addr = format!("127.0.0.1:{}", port.unwrap_or(0));
    let exact_gates = port.is_none();
    let sample_interval = std::time::Duration::from_millis(250);
    // LoopInfo probes issued while opening held pools (evented only);
    // they land on the server's request counter, so the exact gate
    // must account for them.
    let mut probe_ops = 0u64;
    let (outcomes, latencies) = match backend {
        Backend::Loopback => {
            println!(
                "transport: in-process loopback (full wire codec, no sockets), {threads} client thread(s)"
            );
            let pools = (0..threads.max(1))
                .map(|_| {
                    let mut client = Client::new(LoopbackTransport::new(Arc::clone(&handler)));
                    client.hello("loadgen").expect("handshake");
                    ClientPool::plain(vec![client])
                })
                .collect();
            run_pools(&plan, pools)
        }
        Backend::Blocking => {
            let server = TcpServer::spawn_traced(
                bind_addr.as_str(),
                Arc::clone(&handler),
                workers,
                trace_threshold,
                2048,
                sample_interval,
                2048,
            )
            .expect("bind localhost");
            let addr = server.local_addr();
            let scraper = telemetry_enabled.then(|| Scraper::start(addr));
            let result = run_tcp(
                &plan,
                addr,
                threads,
                connections,
                churn,
                "blocking",
                None,
                exact_gates,
                None,
                &mut probe_ops,
            );
            scrape_report = scraper.map(|s| s.finish(addr));
            server_stats = Some(ServerStats {
                accepted: server.accepted_total(),
                requests: server.requests_served(),
                evicted_idle: 0,
                evicted_slow: 0,
            });
            server.shutdown();
            result
        }
        #[cfg(not(target_os = "linux"))]
        Backend::Evented => panic!("--server evented requires Linux (epoll)"),
        #[cfg(target_os = "linux")]
        Backend::Evented => {
            let config = EventedConfig {
                loops,
                busy_poll,
                slow_trace_threshold: trace_threshold,
                trace_capacity: 2048,
                sample_interval,
                series_capacity: 2048,
                ..EventedConfig::default()
            };
            println!(
                "evented topology: {loops} event loop(s) (default min(available_parallelism, 4) = {}), reuseport {}, busy-poll {}",
                default_loops(),
                if config.reuseport { "on" } else { "off" },
                if busy_poll { "on" } else { "off" },
            );
            let server = EventedServer::spawn(bind_addr.as_str(), Arc::clone(&handler), config)
                .expect("bind localhost");
            let addr = server.local_addr();
            let scraper = telemetry_enabled.then(|| Scraper::start(addr));
            // The scraper (connected synchronously above) holds one
            // extra connection; the held-shape gauge assertion is
            // about the replay pools.
            let gauge = || server.open_connections() - usize::from(telemetry_enabled);
            let result = run_tcp(
                &plan,
                addr,
                threads,
                connections,
                churn,
                "evented",
                Some(&gauge),
                exact_gates,
                Some((shards, loops)),
                &mut probe_ops,
            );
            scrape_report = scraper.map(|s| s.finish(addr));
            let (evicted_idle, evicted_slow) = server.evictions();
            server_stats = Some(ServerStats {
                accepted: server.accepted_total(),
                requests: server.requests_served(),
                evicted_idle,
                evicted_slow,
            });
            server.shutdown();
            result
        }
    };
    let wall = t0.elapsed().as_secs_f64();

    /// Dispatches the chosen connection shape against a bound TCP
    /// address; asserts the held-connection gauge when the evented
    /// server handle is available (`exact_gauge` false — a fixed
    /// `--port` with external observers attached — weakens equality to
    /// a lower bound). `affine` (`(shards, loops)`, evented held shape
    /// only) arms the LoopInfo probe + loop-affine routing; the probe
    /// op count accumulates into `probe_ops`.
    #[allow(clippy::too_many_arguments)]
    fn run_tcp(
        plan: &TrafficPlan,
        addr: std::net::SocketAddr,
        threads: usize,
        connections: Option<usize>,
        churn: bool,
        backend_name: &str,
        held_gauge: Option<&dyn Fn() -> usize>,
        exact_gauge: bool,
        affine: Option<(usize, usize)>,
        probe_ops: &mut u64,
    ) -> (Vec<DeviceOutcome>, Histogram) {
        if churn {
            println!(
                "transport: TCP {addr} ({backend_name}), connection churn — one connection per device replay, {threads} client thread(s)"
            );
            return run_churn(plan, threads, || {
                Client::new(TcpTransport::connect(addr).expect("churn connect"))
            });
        }
        match connections {
            None => {
                println!(
                    "transport: TCP {addr} ({backend_name}), one connection per client thread, {threads} thread(s)"
                );
                let pools = (0..threads.max(1))
                    .map(|_| {
                        let mut client = Client::new(
                            TcpTransport::connect(addr).expect("connect to own server"),
                        );
                        client.hello("loadgen").expect("handshake");
                        ClientPool::plain(vec![client])
                    })
                    .collect();
                run_pools(plan, pools)
            }
            Some(count) => {
                let t0 = Instant::now();
                let (pools, probes) = open_held_pools(addr, count, threads, affine);
                *probe_ops += probes;
                println!(
                    "transport: TCP {addr} ({backend_name}), {count} connections held concurrently (opened + handshaken in {:.0} ms), {threads} client thread(s)",
                    t0.elapsed().as_secs_f64() * 1e3,
                );
                if let Some(gauge) = held_gauge {
                    let open = gauge();
                    if exact_gauge {
                        assert_eq!(
                            open, count,
                            "every held connection must be established simultaneously"
                        );
                    } else {
                        assert!(
                            open >= count,
                            "every held connection must be established simultaneously \
                             (gauge {open} < {count}; external observers only add connections)"
                        );
                    }
                }
                run_pools(plan, pools)
            }
        }
    }

    // ── Report ──────────────────────────────────────────────────────
    let total: usize = outcomes.iter().map(|o| o.requests).sum();
    let ops = total as f64 / wall.max(1e-9);
    let s = latencies.summary();
    println!(
        "\nreplayed {total} authentication requests in {:.2} s = {ops:.0} ops/s",
        wall
    );
    println!(
        "latency: p50 {:.1} us | p90 {:.1} us | p99 {:.1} us | p999 {:.1} us | max {:.1} us",
        s.p50 as f64 / 1e3,
        s.p90 as f64 / 1e3,
        s.p99 as f64 / 1e3,
        s.p999 as f64 / 1e3,
        s.max as f64 / 1e3,
    );
    if let Some(stats) = &server_stats {
        println!(
            "server: accepted {} connection(s), served {} request frame(s), evicted {} idle / {} slow",
            stats.accepted, stats.requests, stats.evicted_idle, stats.evicted_slow,
        );
    }

    println!(
        "\n{:>7} {:>18} {:>9} {:>9} {:>9} {:>9} {:>11} {:>17}",
        "device", "scheme", "role", "requests", "accepted", "rejected", "flagged@", "reason"
    );
    for o in &outcomes {
        println!(
            "{:>7} {:>18} {:>9} {:>9} {:>9} {:>9} {:>11} {:>17}",
            o.device_id,
            o.scheme,
            match o.role {
                Role::Benign => "benign",
                Role::LisaAttacker => "attacker",
            },
            o.requests,
            o.accepted,
            o.rejected,
            o.wire_flagged_at.map_or("-".into(), |i| i.to_string()),
            o.flag_reason.as_deref().unwrap_or("-"),
        );
    }

    // ── Acceptance gates ────────────────────────────────────────────
    assert!(total > 0 && ops > 0.0, "throughput must be nonzero");
    let attackers: Vec<&DeviceOutcome> = outcomes
        .iter()
        .filter(|o| o.role == Role::LisaAttacker)
        .collect();
    let benign: Vec<&DeviceOutcome> = outcomes.iter().filter(|o| o.role == Role::Benign).collect();
    for o in &attackers {
        assert!(
            o.wire_flagged_at.is_some(),
            "attacked device {} was never rejected with the DeviceFlagged wire error",
            o.device_id
        );
        assert!(
            o.flag_reason.is_some(),
            "attacked device {} not flagged in the registry",
            o.device_id
        );
    }
    for o in &benign {
        assert!(
            o.wire_flagged_at.is_none() && o.flag_reason.is_none(),
            "benign device {} was flagged ({:?})",
            o.device_id,
            o.flag_reason
        );
    }
    if let Some(stats) = &server_stats {
        // Every auth request plus the per-device flag query landed on
        // the server (plus handshakes, which depend on the shape).
        assert!(
            stats.requests as usize >= total + plan.devices.len(),
            "server frame count {} below the replayed workload {}",
            stats.requests,
            total + plan.devices.len(),
        );
    }
    // Tail gate (--assert-p999-us): the printed p999 becomes a hard
    // floor CI can guardband against.
    if let Some(limit_us) = flags.get_u64("assert-p999-us") {
        let p999_us = s.p999 as f64 / 1e3;
        assert!(
            s.p999 <= limit_us.saturating_mul(1000),
            "client-observed p999 {p999_us:.1} us exceeds the --assert-p999-us {limit_us} us gate"
        );
        println!("tail gate: p999 {p999_us:.1} us <= {limit_us} us — ok");
    }
    let mean_flag_at = attackers
        .iter()
        .filter_map(|o| o.wire_flagged_at)
        .sum::<usize>() as f64
        / attackers.len().max(1) as f64;
    println!(
        "\nverdict: {}/{} attacked devices rejected at the wire (DeviceFlagged, mean request index {mean_flag_at:.1}), {}/{} benign devices flagged — all gates asserted.",
        attackers.iter().filter(|o| o.wire_flagged_at.is_some()).count(),
        attackers.len(),
        benign.iter().filter(|o| o.flag_reason.is_some()).count(),
        benign.len(),
    );

    // ── Telemetry gates (--telemetry) ───────────────────────────────
    if let Some(scrape) = &scrape_report {
        // Every op the client side issued, by construction of the run:
        // shape handshakes, the replayed auths, one verdict query per
        // device, the scraper's own traffic, and the final scrape
        // (which counts itself — the counter increments before the
        // snapshot is cut).
        let hellos = if churn {
            0
        } else {
            connections.unwrap_or(threads.max(1))
        } as u64;
        let client_ops = hellos
            + probe_ops
            + total as u64
            + plan.devices.len() as u64
            + scrape.scraper_ops
            + scrape.final_ops;
        let served = scrape.snapshot.counter_total("server.requests");
        if exact_gates {
            assert_eq!(
                served,
                client_ops,
                "server-side request counter must equal the client-side op count exactly \
                 ({hellos} handshakes + {probe_ops} loop probes + {total} auths + {} verdict queries + {} scraper ops + {} final ops)",
                plan.devices.len(),
                scrape.scraper_ops,
                scrape.final_ops,
            );
        } else {
            // External observers on the fixed --port add frames of
            // their own; the server can only ever see *more* than us.
            assert!(
                served >= client_ops,
                "server-side request counter {served} below the client-side op count {client_ops}"
            );
        }
        for phase in ropuf_telemetry::SERIES_PHASES {
            match scrape.snapshot.find(
                "server.request.phase_ns",
                &[
                    ("backend", backend.name()),
                    ("msg", "auth"),
                    ("phase", phase),
                ],
            ) {
                Some(ropuf_telemetry::MetricValue::Histogram(h)) => {
                    assert!(h.count > 0, "auth {phase} phase histogram is empty");
                }
                other => panic!("auth {phase} phase histogram missing: {other:?}"),
            }
        }
        // The trace ring must actually hold traces — an artifact whose
        // slowest-requests section is empty proves nothing. The
        // threshold defaults (100 µs full / 0 smoke) make this
        // satisfiable by construction.
        assert!(
            scrape.trace.recorded > 0,
            "slow-request trace ring is empty at threshold {} us; lower --trace-threshold-us",
            trace_threshold.as_micros(),
        );
        let slowest = scrape
            .trace
            .records
            .iter()
            .map(|r| r.total_ns)
            .max()
            .unwrap_or(0);
        println!(
            "\ntelemetry: server counted {served} request frames {} {client_ops} client-side ops{}, \
             {} mid-run scrapes under load; trace ring: {} slow requests recorded, {} dropped, slowest {:.1} us",
            if exact_gates { "==" } else { ">=" },
            if exact_gates { " (exact)" } else { " (external observers attached)" },
            scrape.mid_run_scrapes,
            scrape.trace.recorded,
            scrape.trace.dropped,
            slowest as f64 / 1e3,
        );

        // Top-K slowest traced requests, with the full five-phase
        // attribution (where did the tail request actually wait?).
        let mut slowest_traces: Vec<&ropuf_telemetry::TraceRecord> =
            scrape.trace.records.iter().collect();
        slowest_traces.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        slowest_traces.truncate(8);
        println!(
            "{:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}",
            "seq", "msg", "total_us", "ready", "decode", "handle", "flush", "fl-wait", "worker"
        );
        for r in &slowest_traces {
            println!(
                "{:>6} {:>#6x} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>6}",
                r.seq,
                r.msg_type,
                r.total_ns as f64 / 1e3,
                r.ready_ns as f64 / 1e3,
                r.decode_ns as f64 / 1e3,
                r.handle_ns as f64 / 1e3,
                r.flush_ns as f64 / 1e3,
                r.flush_wait_ns as f64 / 1e3,
                r.worker,
            );
        }
        println!(
            "timeseries: {} point(s) sampled at {} ms cadence ({} in the ring)",
            scrape.timeseries.sampled,
            scrape.timeseries.interval_ns / 1_000_000,
            scrape.timeseries.points.len(),
        );
        assert_eq!(
            scrape.timeseries.interval_ns,
            u64::try_from(sample_interval.as_nanos()).expect("small interval"),
            "the dumped ring must carry the configured sampling cadence"
        );

        if let Some(path) = telemetry_json {
            let phases_json = ropuf_telemetry::SERIES_PHASES
                .iter()
                .map(|phase| {
                    format!(
                        "\"auth_{}\": {}",
                        phase.replace('-', "_"),
                        phase_summary_json(&scrape.snapshot, backend.name(), phase)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let traces_json = slowest_traces
                .iter()
                .map(|r| {
                    format!(
                        "    {{\"seq\": {}, \"msg_type\": {}, \"worker\": {}, \"total_ns\": {}, \
                         \"ready_ns\": {}, \"decode_ns\": {}, \"handle_ns\": {}, \
                         \"flush_ns\": {}, \"flush_wait_ns\": {}}}",
                        r.seq,
                        r.msg_type,
                        r.worker,
                        r.total_ns,
                        r.ready_ns,
                        r.decode_ns,
                        r.handle_ns,
                        r.flush_ns,
                        r.flush_wait_ns,
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            let artifact = format!(
                "{{\n  \"schema\": \"ropuf-bench-telemetry/v1\",\n  \"mode\": \"{}\",\n  \"server\": \"{}\",\n  \"trace_threshold_us\": {},\n  \"requests\": {total},\n  \"client_ops\": {client_ops},\n  \"server_requests\": {served},\n  \"exact_op_accounting\": {exact_gates},\n  \"mid_run_scrapes\": {},\n  \"client_latency_us\": {{\"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}, \"max\": {:.1}}},\n  \"server_phase_ns\": {{{phases_json}}},\n  \"timeseries\": {{\"sampled\": {}, \"returned\": {}, \"interval_ns\": {}}},\n  \"trace\": {{\"recorded\": {}, \"dropped\": {}, \"returned\": {}, \"slowest_total_ns\": {slowest}}},\n  \"slowest_traces\": [\n{traces_json}\n  ]\n}}\n",
                if smoke { "smoke" } else { "full" },
                backend.name(),
                trace_threshold.as_micros(),
                scrape.mid_run_scrapes,
                s.p50 as f64 / 1e3,
                s.p99 as f64 / 1e3,
                s.p999 as f64 / 1e3,
                s.max as f64 / 1e3,
                scrape.timeseries.sampled,
                scrape.timeseries.points.len(),
                scrape.timeseries.interval_ns,
                scrape.trace.recorded,
                scrape.trace.dropped,
                scrape.trace.records.len(),
            );
            ropuf_bench::write_artifact(path, &artifact);
        }
    }

    if let Some(path) = flags.get_required_value("json") {
        let stats_json = match &server_stats {
            Some(stats) => format!(
                "{{\"accepted\": {}, \"served_frames\": {}, \"evicted_idle\": {}, \"evicted_slow\": {}}}",
                stats.accepted, stats.requests, stats.evicted_idle, stats.evicted_slow
            ),
            None => "null".to_string(),
        };
        let artifact = format!(
            "{{\n  \"schema\": \"ropuf-bench-loadgen/v1\",\n  \"mode\": \"{}\",\n  \"server\": \"{}\",\n  \"connection_shape\": \"{}\",\n  \"config\": {{\"devices\": {devices}, \"rounds\": {rounds}, \"seed\": {master_seed}, \"shards\": {shards}, \"threads\": {threads}, \"workers\": {workers}, \"loops\": {loops}, \"busy_poll\": {busy_poll}, \"connections\": {}}},\n  \"requests\": {total},\n  \"ops_per_s\": {ops:.0},\n  \"latency_us\": {{\"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}, \"max\": {:.1}}},\n  \"server_stats\": {stats_json}\n}}\n",
            if smoke { "smoke" } else { "full" },
            backend.name(),
            if churn {
                "churn"
            } else if connections.is_some() {
                "held"
            } else {
                "per-thread"
            },
            connections.map_or("null".to_string(), |c| c.to_string()),
            s.p50 as f64 / 1e3,
            s.p90 as f64 / 1e3,
            s.p99 as f64 / 1e3,
            s.p999 as f64 / 1e3,
            s.max as f64 / 1e3,
        );
        ropuf_bench::write_artifact(path, &artifact);
    }
}

/// Chaos mode (`--chaos <seed>`): the full resilience stack under
/// deterministic fire, measured instead of merely proven.
///
/// The evented backend serves a durable registry whose WAL is armed to
/// fail exactly at the first flag append (latching read-only degraded
/// mode mid-run), behind an admission policy with real budgets. Every
/// client connection runs through a seeded [`FaultPlan`] — partial
/// I/O, injected delays, random connection resets — and every request
/// is driven by the retrying [`ResilientClient`]. A concurrent
/// overload probe pipelines a scrape burst through one connection to
/// push it over the brown-out budget and counts the `Overloaded`
/// answers.
///
/// Floors asserted, not just printed: eventual success ≥ 99.9 %
/// (100 % under `--smoke`), at least one retry and one reconnect,
/// brown-out sheds observed while scrapes still serve, exactly one
/// degraded transition from exactly one injected WAL fault, and the
/// shed path answering in well under a millisecond amortized while
/// the authentication traffic keeps flowing.
///
/// `--json PATH` writes a `ropuf-bench-chaos/v1` artifact.
///
/// [`FaultPlan`]: ropuf_proto::FaultPlan
/// [`ResilientClient`]: ropuf_server::ResilientClient
#[cfg(target_os = "linux")]
mod chaos {
    use std::io::Write as _;
    use std::net::SocketAddr;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::{Duration, Instant};

    use ropuf_numeric::Histogram;
    use ropuf_proto::{
        derive_seed, ErrorCode, FaultPlan, FaultStats, FrameReader, FrameWriter, Request, Response,
        RATE_ONE,
    };
    use ropuf_server::{
        Deadlines, EventedConfig, EventedServer, OverloadPolicy, RequestHandler, ResilientClient,
        RetryPolicy, Role, TrafficPlan, TrafficSpec, VerifierHandler,
    };
    use ropuf_verifier::{DetectorConfig, StoreFaults, StoreOptions, Verifier};

    use ropuf_constructions::pairing::lisa::LisaConfig;

    /// Admission budgets for the run: brown-out at 64 KiB of pending
    /// out-buffer, hard ceiling at 512 KiB, clients told to come back
    /// in 2 ms.
    fn overload_policy() -> OverloadPolicy {
        OverloadPolicy {
            brownout_pressure: 64 * 1024,
            max_pressure: 512 * 1024,
            retry_after_ms: 2,
        }
    }

    fn retry_policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            budget: 8,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(20),
            seed,
        }
    }

    /// What one device's chaos replay produced.
    struct Outcome {
        device_id: u64,
        role: Role,
        requests: usize,
        answered: usize,
        /// Exchanges that exhausted the retry budget.
        failed: usize,
        wire_flagged: bool,
        registry_flagged: bool,
    }

    /// What the overload probe observed.
    struct ProbeReport {
        sent: usize,
        served: usize,
        shed: usize,
        drain: Duration,
    }

    /// Pipelines `burst` MetricsSnapshot requests through one raw
    /// connection without reading, pushing its pending out-buffer over
    /// the brown-out budget, then drains and classifies every answer.
    fn overload_probe(addr: SocketAddr, burst: usize) -> ProbeReport {
        let stream = std::net::TcpStream::connect(addr).expect("probe connect");
        stream.set_nodelay(true).ok();
        let mut write_half = stream.try_clone().expect("probe clone");
        let mut wire = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut wire);
            for _ in 0..burst {
                writer
                    .write_request(&Request::MetricsSnapshot)
                    .expect("encode");
            }
        }
        write_half.write_all(&wire).expect("probe burst write");
        let t0 = Instant::now();
        let mut reader = FrameReader::new(stream);
        let (mut served, mut shed) = (0usize, 0usize);
        for i in 0..burst {
            let payload = reader
                .read_frame()
                .expect("probe read")
                .unwrap_or_else(|| panic!("server closed the probe at answer {i}/{burst}"));
            match Response::decode(&payload).expect("probe answer decodes") {
                Response::MetricsBin { .. } => served += 1,
                Response::Error {
                    code: ErrorCode::Overloaded,
                    detail,
                } => {
                    assert!(
                        ropuf_proto::parse_retry_after_ms(&detail).is_some(),
                        "Overloaded must carry a retry_after_ms hint, got {detail:?}"
                    );
                    shed += 1;
                }
                other => panic!("probe answer {i}: unexpected {other:?}"),
            }
        }
        ProbeReport {
            sent: burst,
            served,
            shed,
            drain: t0.elapsed(),
        }
    }

    #[allow(clippy::too_many_lines)]
    pub fn run(flags: &ropuf_bench::Flags) {
        let smoke = flags.has("smoke");
        let chaos_seed = flags.get_u64("chaos").expect("--chaos takes a seed");
        let fault_rate =
            u32::try_from(flags.get_u64("fault-rate").unwrap_or(2048)).expect("rate fits u32");
        assert!(fault_rate <= RATE_ONE, "--fault-rate is per {RATE_ONE}");
        let devices = flags
            .get_usize("devices")
            .unwrap_or(if smoke { 8 } else { 32 });
        let rounds = flags
            .get_usize("rounds")
            .unwrap_or(if smoke { 4 } else { 16 });
        let master_seed = flags.get_u64("seed").unwrap_or(1);
        let shards = flags.get_usize("shards").unwrap_or(8);
        let threads = flags
            .get_usize("threads")
            .unwrap_or(if smoke { 2 } else { 4 });
        let connections = flags
            .get_usize("connections")
            .unwrap_or(if smoke { 64 } else { 1024 });
        let loops = flags
            .get_usize("loops")
            .unwrap_or_else(super::default_loops);

        ropuf_bench::header(
            "LOADGEN --chaos — deterministic fault injection against the resilient stack",
            "under seeded partial I/O, resets, and a mid-run WAL failure, the retrying client converges to >= 99.9% eventual success while overload sheds answer in well under a millisecond",
        );

        let detector = DetectorConfig::default();
        let spec = TrafficSpec {
            devices,
            master_seed,
            rounds,
            lisa: LisaConfig::default(),
            detector,
        };
        let plan = TrafficPlan::build(&spec);
        println!(
            "traffic plan: {} devices ({} attacked), {} requests; chaos seed {chaos_seed}, fault rate {fault_rate}/{RATE_ONE} partial, {}/{RATE_ONE} delay, {}/{RATE_ONE} reset",
            plan.devices.len(),
            plan.attackers().count(),
            plan.total_requests(),
            fault_rate / 4,
            fault_rate / 16,
        );

        // Durable registry with the WAL armed to fail at the first
        // *flag* append: the fleet enrolls over the wire (appends
        // 0..devices), so append `devices` is the first best-effort
        // flag write — it latches read-only without changing answers.
        let dir = std::env::temp_dir().join(format!("ropuf-chaos-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = StoreFaults::new().fail_append_at(devices as u64);
        let (verifier, _) = Verifier::open_durable_faulted(
            &dir,
            shards,
            detector,
            StoreOptions::default(),
            Some(faults),
        )
        .expect("open durable store");
        let handler = Arc::new(VerifierHandler::new(Arc::new(verifier)));
        let dyn_handler: Arc<dyn RequestHandler> = handler.clone();

        let config = EventedConfig {
            loops,
            busy_poll: flags.has("busy-poll"),
            overload: overload_policy(),
            ..EventedConfig::default()
        };
        let server =
            EventedServer::spawn("127.0.0.1:0", dyn_handler, config).expect("bind localhost");
        let addr = server.local_addr();
        println!(
            "server: evented TCP {addr}, {loops} loop(s), admission brownout {} KiB / max {} KiB",
            overload_policy().brownout_pressure / 1024,
            overload_policy().max_pressure / 1024,
        );

        // Every client counts retries into one registry and faults
        // into one stats block, so the artifact can report
        // client.retries{cause} and faults.injected{kind} next to the
        // server-side counters.
        let client_registry = ropuf_telemetry::Registry::new();
        let fault_stats = Arc::new(FaultStats::new());
        let make_client = |conn: u64, pin_enroll_reset: bool| -> ResilientClient {
            let stats = Arc::clone(&fault_stats);
            let mut client =
                ResilientClient::new(addr, retry_policy(chaos_seed ^ conn), Deadlines::default())
                    .expect("resolve addr")
                    .with_faults(Box::new(move |serial| {
                        let plan = FaultPlan::new(derive_seed(chaos_seed, conn * 4096 + serial))
                            .with_partial_io(fault_rate)
                            .with_delays(fault_rate / 4, Duration::from_micros(20))
                            .with_resets(fault_rate / 16)
                            .with_stats(Arc::clone(&stats));
                        if pin_enroll_reset && serial == 0 {
                            // Deterministic idempotency exercise: the first
                            // enroll is applied but its answer dies on the
                            // wire; the retry must draw DuplicateDevice and
                            // report success.
                            plan.with_read_reset_at(0)
                        } else {
                            plan
                        }
                    }));
            client.attach_telemetry(&client_registry);
            client
        };

        // Wire enrollment of the whole fleet, through the chaos.
        let t0 = Instant::now();
        let mut enroller = make_client(1_000_000, true);
        for device in &plan.devices {
            let e = &device.enrollment;
            enroller
                .enroll(e.device_id, e.scheme_tag, e.helper.clone(), e.key_digest)
                .expect("every enroll eventually succeeds");
        }
        assert!(
            enroller.retries_total() > 0,
            "the pinned enroll-response reset must force at least one retry"
        );
        println!(
            "enrolled {} devices over the wire in {:.0} ms ({} retries, {} reconnects)",
            plan.devices.len(),
            t0.elapsed().as_secs_f64() * 1e3,
            enroller.retries_total(),
            enroller.reconnects(),
        );
        drop(enroller);

        // Open and handshake the held connection fleet.
        let t0 = Instant::now();
        let mut pools: Vec<Vec<ResilientClient>> =
            (0..threads.max(1)).map(|_| Vec::new()).collect();
        for i in 0..connections {
            let mut client = make_client(i as u64, false);
            client.hello("loadgen-chaos").unwrap_or_else(|e| {
                panic!("held connection {i}/{connections} never established: {e}")
            });
            pools[i % threads.max(1)].push(client);
        }
        pools.retain(|pool| !pool.is_empty());
        println!(
            "held {} chaos connections established in {:.0} ms across {} thread(s)",
            connections,
            t0.elapsed().as_secs_f64() * 1e3,
            pools.len(),
        );

        // Replay under fire, with the overload probe running
        // concurrently against the same server.
        let t0 = Instant::now();
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(Vec<Outcome>, Histogram)>();
        let plan_ref = &plan;
        let probe = std::thread::scope(|scope| {
            for mut pool in pools {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut rr = 0usize;
                    let mut latencies = Histogram::new();
                    let mut outcomes = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(device) = plan_ref.devices.get(i) else {
                            break;
                        };
                        let mut outcome = Outcome {
                            device_id: device.device_id,
                            role: device.role,
                            requests: device.requests.len(),
                            answered: 0,
                            failed: 0,
                            wire_flagged: false,
                            registry_flagged: false,
                        };
                        for item in &device.requests {
                            let slot = rr % pool.len();
                            let client = &mut pool[slot];
                            rr += 1;
                            let t0 = Instant::now();
                            let result = client.authenticate(item.clone());
                            latencies
                                .record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                            match result {
                                Ok(_) => outcome.answered += 1,
                                Err(e) if e.error_code() == Some(ErrorCode::DeviceFlagged) => {
                                    outcome.answered += 1;
                                    outcome.wire_flagged = true;
                                }
                                Err(e) if e.error_code().is_some() => {
                                    panic!("device {}: server error: {e}", device.device_id)
                                }
                                Err(_) => outcome.failed += 1,
                            }
                        }
                        let slot = rr % pool.len();
                        outcome.registry_flagged = pool[slot]
                            .query_verdict(device.device_id)
                            .expect("flag query eventually succeeds")
                            .is_some();
                        outcomes.push(outcome);
                    }
                    tx.send((outcomes, latencies)).expect("collector alive");
                });
            }
            drop(tx);
            let probe = scope.spawn(move || overload_probe(addr, 1024));
            probe.join().expect("probe thread panicked")
        });
        let mut outcomes = Vec::new();
        let mut latencies = Histogram::new();
        for (batch, hist) in rx {
            outcomes.extend(batch);
            latencies.merge(&hist);
        }
        outcomes.sort_by_key(|o| o.device_id);
        let wall = t0.elapsed().as_secs_f64();

        // ── Report ──────────────────────────────────────────────────
        let total: usize = outcomes.iter().map(|o| o.requests).sum();
        let answered: usize = outcomes.iter().map(|o| o.answered).sum();
        let failed: usize = outcomes.iter().map(|o| o.failed).sum();
        let success_rate = answered as f64 / total.max(1) as f64;
        let s = latencies.summary();
        let client_snapshot = client_registry.snapshot();
        let retries = client_snapshot.counter_total("client.retries");
        let client_faults = fault_stats.snapshot();
        println!(
            "\nreplayed {total} requests in {wall:.2} s: {answered} answered ({:.4}% eventual success), {failed} exhausted the retry budget",
            success_rate * 100.0,
        );
        println!(
            "time-to-answer (includes retries): p50 {:.1} us | p99 {:.1} us | p999 {:.1} us | max {:.1} us",
            s.p50 as f64 / 1e3,
            s.p99 as f64 / 1e3,
            s.p999 as f64 / 1e3,
            s.max as f64 / 1e3,
        );
        println!(
            "client: {retries} retries ({}), faults injected: {}",
            ["connect", "transport", "overloaded"]
                .iter()
                .map(|cause| {
                    format!(
                        "{cause} {}",
                        match client_snapshot.find("client.retries", &[("cause", cause)]) {
                            Some(ropuf_telemetry::MetricValue::Counter(n)) => *n,
                            _ => 0,
                        }
                    )
                })
                .collect::<Vec<_>>()
                .join(", "),
            client_faults
                .iter()
                .map(|(kind, n)| format!("{kind} {n}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        let shed_mean_us = probe.drain.as_secs_f64() * 1e6 / probe.sent.max(1) as f64;
        println!(
            "overload probe: {} pipelined scrapes -> {} served, {} shed (Overloaded), drained in {:.1} ms = {:.0} us/answer amortized",
            probe.sent,
            probe.served,
            probe.shed,
            probe.drain.as_secs_f64() * 1e3,
            shed_mean_us,
        );

        // The authoritative post-run scrape (a fault-free client).
        let mut scraper = ResilientClient::new(addr, retry_policy(0), Deadlines::default())
            .expect("resolve addr");
        let snapshot = scraper.metrics().expect("final scrape");
        let degraded = snapshot.counter_total("server.degraded_transitions");
        let wal_faults = snapshot.counter_total("faults.injected");
        let sheds = snapshot.counter_total("server.shed");
        println!(
            "server: {} requests served, {sheds} shed, {degraded} degraded transition(s), {wal_faults} injected store fault(s)",
            snapshot.counter_total("server.requests"),
        );

        // ── Floors (asserted, not just printed) ─────────────────────
        if smoke {
            assert_eq!(failed, 0, "smoke requires 100% eventual success");
        } else {
            assert!(
                success_rate >= 0.999,
                "eventual success {:.4}% below the 99.9% floor",
                success_rate * 100.0
            );
        }
        for o in &outcomes {
            match o.role {
                Role::LisaAttacker => assert!(
                    o.wire_flagged && o.registry_flagged,
                    "attacked device {} not flagged under chaos",
                    o.device_id
                ),
                Role::Benign => assert!(
                    !o.wire_flagged && !o.registry_flagged,
                    "benign device {} flagged under chaos",
                    o.device_id
                ),
            }
        }
        assert!(retries > 0, "chaos must exercise the retry machinery");
        assert!(
            client_faults.iter().map(|(_, n)| n).sum::<u64>() > 0,
            "chaos must inject transport faults"
        );
        assert!(
            probe.shed > 0 && probe.served > 0,
            "the probe must see brown-out sheds while scrapes still serve \
             (served {}, shed {})",
            probe.served,
            probe.shed
        );
        assert!(
            shed_mean_us < 1000.0,
            "overloaded answers took {shed_mean_us:.0} us amortized — the shed path must stay under a millisecond"
        );
        assert!(sheds >= probe.shed as u64, "server counted its sheds");
        assert_eq!(degraded, 1, "exactly one read-only latch transition");
        assert_eq!(wal_faults, 1, "exactly one injected WAL fault");
        assert!(
            handler.read_only(),
            "the WAL fault must have latched the registry read-only"
        );
        println!(
            "\nverdict: {:.4}% eventual success, {retries} retries, {sheds} sheds, read-only latch exercised — all floors asserted.",
            success_rate * 100.0,
        );

        if let Some(path) = flags.get_required_value("json") {
            let retries_json = ["connect", "transport", "overloaded"]
                .iter()
                .map(|cause| {
                    format!(
                        "\"{cause}\": {}",
                        match client_snapshot.find("client.retries", &[("cause", cause)]) {
                            Some(ropuf_telemetry::MetricValue::Counter(n)) => *n,
                            _ => 0,
                        }
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let faults_json = client_faults
                .iter()
                .map(|(kind, n)| format!("\"{kind}\": {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            let artifact = format!(
                "{{\n  \"schema\": \"ropuf-bench-chaos/v1\",\n  \"mode\": \"{}\",\n  \"server\": \"evented\",\n  \"config\": {{\"devices\": {devices}, \"rounds\": {rounds}, \"seed\": {master_seed}, \"chaos_seed\": {chaos_seed}, \"fault_rate\": {fault_rate}, \"shards\": {shards}, \"threads\": {threads}, \"connections\": {connections}, \"loops\": {loops}}},\n  \"requests\": {total},\n  \"answered\": {answered},\n  \"failed\": {failed},\n  \"eventual_success_rate\": {success_rate:.6},\n  \"availability_us\": {{\"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}, \"max\": {:.1}}},\n  \"client\": {{\"retries\": {{{retries_json}}}, \"faults_injected\": {{{faults_json}}}}},\n  \"server\": {{\"sheds\": {sheds}, \"degraded_transitions\": {degraded}, \"store_faults_injected\": {wal_faults}}},\n  \"overload_probe\": {{\"sent\": {}, \"served\": {}, \"shed\": {}, \"drain_ms\": {:.2}, \"amortized_us_per_answer\": {shed_mean_us:.1}}}\n}}\n",
                if smoke { "smoke" } else { "full" },
                s.p50 as f64 / 1e3,
                s.p99 as f64 / 1e3,
                s.p999 as f64 / 1e3,
                s.max as f64 / 1e3,
                probe.sent,
                probe.served,
                probe.shed,
                probe.drain.as_secs_f64() * 1e3,
            );
            ropuf_bench::write_artifact(path, &artifact);
        }

        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
