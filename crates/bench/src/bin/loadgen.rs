//! The load generator: mixed benign/LISA traffic against the real
//! serving surface, with throughput and tail-latency reporting.
//!
//! ```text
//! loadgen [--devices N] [--rounds R] [--seed S] [--shards M]
//!         [--threads T] [--workers W] [--smoke] [--loopback]
//! ```
//!
//! Builds a deterministic [`TrafficPlan`] (first quarter of the fleet:
//! real LISA attack trajectories; the rest: benign authentication
//! across the other three constructions), enrolls the fleet through
//! one shard-partitioned `Verifier::enroll_batch` call, spawns the TCP
//! server on an ephemeral localhost port (or wires up the in-process
//! loopback transport with `--loopback`), and replays the plan from
//! `T` client threads — each request timed into a per-thread
//! log-bucketed histogram, merged at the end.
//!
//! Acceptance shape (asserted, not just printed): nonzero throughput,
//! **every** attacked device rejected at the wire with the
//! `DeviceFlagged` error code, and **zero** benign devices flagged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use ropuf_bench::parse_flags;
use ropuf_constructions::pairing::lisa::LisaConfig;
use ropuf_numeric::Histogram;
use ropuf_proto::ErrorCode;
use ropuf_server::{
    Client, DeviceTraffic, LoopbackTransport, RequestHandler, Role, TcpServer, TcpTransport,
    TrafficPlan, TrafficSpec, Transport, VerifierHandler,
};
use ropuf_verifier::{DetectorConfig, Verifier};

/// What one device's replay produced.
struct DeviceOutcome {
    device_id: u64,
    scheme: &'static str,
    role: Role,
    requests: usize,
    accepted: usize,
    rejected: usize,
    /// 0-based request index of the first wire-level `DeviceFlagged`
    /// rejection, if any.
    wire_flagged_at: Option<usize>,
    /// Flag reason label from a post-replay `QueryVerdict`, if flagged.
    flag_reason: Option<String>,
}

/// Replays every request of one device, in order, through `client`.
fn replay_device<T: Transport>(
    client: &mut Client<T>,
    device: &DeviceTraffic,
    latencies: &mut Histogram,
) -> DeviceOutcome {
    let mut outcome = DeviceOutcome {
        device_id: device.device_id,
        scheme: device.scheme,
        role: device.role,
        requests: device.requests.len(),
        accepted: 0,
        rejected: 0,
        wire_flagged_at: None,
        flag_reason: None,
    };
    for (i, item) in device.requests.iter().enumerate() {
        let t0 = Instant::now();
        // Borrowed replay: the recorded item is encoded straight from
        // the plan's buffers — no per-request clone.
        let result = client.authenticate_ref(item.as_ref());
        latencies.record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        match result {
            Ok(verdict) if verdict.is_accept() => outcome.accepted += 1,
            Ok(_) => outcome.rejected += 1,
            Err(e) if e.error_code() == Some(ErrorCode::DeviceFlagged) => {
                if outcome.wire_flagged_at.is_none() {
                    outcome.wire_flagged_at = Some(i);
                }
            }
            Err(e) => panic!("device {}: transport failure: {e}", device.device_id),
        }
    }
    outcome.flag_reason = client
        .query_verdict(device.device_id)
        .expect("enrolled device must be queryable")
        .map(|(_, reason)| reason.label().to_string());
    outcome
}

/// Runs the whole plan from `threads` client threads, each with its
/// own transport from `connect`. Returns per-device outcomes (sorted
/// by id) and the merged latency histogram.
fn run_clients<T: Transport, F>(
    plan: &TrafficPlan,
    threads: usize,
    connect: F,
) -> (Vec<DeviceOutcome>, Histogram)
where
    T: Transport,
    F: Fn() -> Client<T> + Sync,
{
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(Vec<DeviceOutcome>, Histogram)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let tx = tx.clone();
            let cursor = &cursor;
            let connect = &connect;
            scope.spawn(move || {
                let mut client = connect();
                client.hello("loadgen").expect("handshake");
                let mut latencies = Histogram::new();
                let mut outcomes = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(device) = plan.devices.get(i) else {
                        break;
                    };
                    outcomes.push(replay_device(&mut client, device, &mut latencies));
                }
                tx.send((outcomes, latencies)).expect("collector alive");
            });
        }
        drop(tx);
    });
    let mut all = Vec::new();
    let mut merged = Histogram::new();
    for (outcomes, latencies) in rx {
        all.extend(outcomes);
        merged.merge(&latencies);
    }
    all.sort_by_key(|o| o.device_id);
    (all, merged)
}

fn main() {
    let flags = parse_flags();
    flags.expect_known(&[
        "devices", "rounds", "seed", "shards", "threads", "workers", "smoke", "loopback",
    ]);
    let smoke = flags.has("smoke");
    let devices = flags
        .get_usize("devices")
        .unwrap_or(if smoke { 8 } else { 32 });
    let rounds = flags
        .get_usize("rounds")
        .unwrap_or(if smoke { 4 } else { 16 });
    let master_seed = flags.get_u64("seed").unwrap_or(1);
    let shards = flags.get_usize("shards").unwrap_or(8);
    let threads = flags
        .get_usize("threads")
        .unwrap_or(if smoke { 2 } else { 4 });
    let workers = flags.get_usize("workers").unwrap_or(4);
    let loopback = flags.has("loopback") || smoke;

    ropuf_bench::header(
        "LOADGEN — mixed benign/LISA traffic against the serving surface",
        "the wire rejects every attacked device with the DeviceFlagged error code while benign fleets authenticate flag-free at serving speed",
    );

    let detector = DetectorConfig::default();
    let spec = TrafficSpec {
        devices,
        master_seed,
        rounds,
        lisa: LisaConfig::default(),
        detector,
    };
    let t0 = Instant::now();
    let plan = TrafficPlan::build(&spec);
    println!(
        "traffic plan: {} devices ({} attacked, {} benign), {} requests, built in {:.0} ms",
        plan.devices.len(),
        plan.attackers().count(),
        plan.benign().count(),
        plan.total_requests(),
        t0.elapsed().as_secs_f64() * 1e3,
    );

    // One shard-partitioned enrollment call for the whole fleet.
    let verifier = Arc::new(Verifier::new(shards, detector));
    let t0 = Instant::now();
    let enroll_results = verifier.enroll_batch(plan.enrollments());
    assert!(
        enroll_results.iter().all(Result::is_ok),
        "fresh fleet ids cannot collide"
    );
    println!(
        "enrolled {} devices into {} shards via one enroll_batch call in {:.1} ms",
        enroll_results.len(),
        shards,
        t0.elapsed().as_secs_f64() * 1e3,
    );

    let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(Arc::clone(&verifier)));
    let t0 = Instant::now();
    let (outcomes, latencies) = if loopback {
        println!("transport: in-process loopback (full wire codec, no sockets), {threads} client thread(s)");
        run_clients(&plan, threads, || {
            Client::new(LoopbackTransport::new(Arc::clone(&handler)))
        })
    } else {
        let server =
            TcpServer::spawn("127.0.0.1:0", Arc::clone(&handler), workers).expect("bind localhost");
        let addr = server.local_addr();
        println!("transport: TCP {addr}, {workers} server worker(s), {threads} client thread(s)");
        let result = run_clients(&plan, threads, || {
            Client::new(TcpTransport::connect(addr).expect("connect to own server"))
        });
        server.shutdown();
        result
    };
    let wall = t0.elapsed().as_secs_f64();

    // ── Report ──────────────────────────────────────────────────────
    let total: usize = outcomes.iter().map(|o| o.requests).sum();
    let ops = total as f64 / wall.max(1e-9);
    let s = latencies.summary();
    println!(
        "\nreplayed {total} authentication requests in {:.2} s = {ops:.0} ops/s",
        wall
    );
    println!(
        "latency: p50 {:.1} us | p90 {:.1} us | p99 {:.1} us | p999 {:.1} us | max {:.1} us",
        s.p50 as f64 / 1e3,
        s.p90 as f64 / 1e3,
        s.p99 as f64 / 1e3,
        s.p999 as f64 / 1e3,
        s.max as f64 / 1e3,
    );

    println!(
        "\n{:>7} {:>18} {:>9} {:>9} {:>9} {:>9} {:>11} {:>17}",
        "device", "scheme", "role", "requests", "accepted", "rejected", "flagged@", "reason"
    );
    for o in &outcomes {
        println!(
            "{:>7} {:>18} {:>9} {:>9} {:>9} {:>9} {:>11} {:>17}",
            o.device_id,
            o.scheme,
            match o.role {
                Role::Benign => "benign",
                Role::LisaAttacker => "attacker",
            },
            o.requests,
            o.accepted,
            o.rejected,
            o.wire_flagged_at.map_or("-".into(), |i| i.to_string()),
            o.flag_reason.as_deref().unwrap_or("-"),
        );
    }

    // ── Acceptance gates ────────────────────────────────────────────
    assert!(total > 0 && ops > 0.0, "throughput must be nonzero");
    let attackers: Vec<&DeviceOutcome> = outcomes
        .iter()
        .filter(|o| o.role == Role::LisaAttacker)
        .collect();
    let benign: Vec<&DeviceOutcome> = outcomes.iter().filter(|o| o.role == Role::Benign).collect();
    for o in &attackers {
        assert!(
            o.wire_flagged_at.is_some(),
            "attacked device {} was never rejected with the DeviceFlagged wire error",
            o.device_id
        );
        assert!(
            o.flag_reason.is_some(),
            "attacked device {} not flagged in the registry",
            o.device_id
        );
    }
    for o in &benign {
        assert!(
            o.wire_flagged_at.is_none() && o.flag_reason.is_none(),
            "benign device {} was flagged ({:?})",
            o.device_id,
            o.flag_reason
        );
    }
    let mean_flag_at = attackers
        .iter()
        .filter_map(|o| o.wire_flagged_at)
        .sum::<usize>() as f64
        / attackers.len().max(1) as f64;
    println!(
        "\nverdict: {}/{} attacked devices rejected at the wire (DeviceFlagged, mean request index {mean_flag_at:.1}), {}/{} benign devices flagged — all gates asserted.",
        attackers.iter().filter(|o| o.wire_flagged_at.is_some()).count(),
        attackers.len(),
        benign.iter().filter(|o| o.flag_reason.is_some()).count(),
        benign.len(),
    );
}
