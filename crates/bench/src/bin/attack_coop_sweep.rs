//! §VI-B end-to-end sweep: cooperative relation recovery across devices,
//! reporting resolved relations and query cost, plus the deterministic
//! assist-selection leakage (§IV-D).

use rand::SeedableRng;
use ropuf_attacks::cooperative::CooperativeAttack;
use ropuf_attacks::Oracle;
use ropuf_constructions::cooperative::{AssistSelection, CooperativeConfig, CooperativeScheme};
use ropuf_constructions::Device;
use ropuf_sim::{ArrayDims, RoArrayBuilder};

fn main() {
    ropuf_bench::header(
        "§VI-B — cooperative attack sweep + §IV-D deterministic-scan leakage",
        "response-bit relations of all cooperating pairs recoverable; deterministic assist selection leaks passively",
    );
    let config = CooperativeConfig::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    println!("{:>8} {:>12} {:>12} {:>12}", "device", "coop pairs", "resolved", "queries");
    for seed in 0..6u64 {
        let mut arng = rand::rngs::StdRng::seed_from_u64(3000 + seed);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut arng);
        let Ok(mut device) =
            Device::provision(array, Box::new(CooperativeScheme::new(config)), 4000 + seed)
        else {
            continue;
        };
        let mut oracle = Oracle::new(&mut device);
        match CooperativeAttack::new(config).run(&mut oracle, &mut rng) {
            Ok(report) => {
                let resolved = report.relative_bits.iter().filter(|b| b.is_some()).count();
                println!(
                    "{seed:>8} {:>12} {resolved:>12} {:>12}",
                    report.coop_pairs.len(),
                    report.queries
                );
            }
            Err(e) => println!("{seed:>8} attack not applicable: {e}"),
        }
    }

    // Passive leakage of the deterministic scan.
    let det = CooperativeConfig {
        selection: AssistSelection::DeterministicScan,
        ..config
    };
    let scheme = CooperativeScheme::new(det);
    let mut skipped_total = 0usize;
    let mut scans = 0usize;
    for seed in 0..10u64 {
        let mut arng = rand::rngs::StdRng::seed_from_u64(5000 + seed);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut arng);
        let mut erng = rand::rngs::StdRng::seed_from_u64(6000 + seed);
        if let Ok((_, transcript)) = scheme.enroll_with_transcript(&array, &mut erng) {
            for (_, skipped, _) in &transcript.scans {
                scans += 1;
                skipped_total += skipped.len();
            }
        }
    }
    println!(
        "\n§IV-D leakage: deterministic scans over 10 devices: {scans} scans, {skipped_total} skipped candidates ⇒ {skipped_total} relation bits leaked passively"
    );
}
