//! §VI-B end-to-end sweep: cooperative relation recovery across a
//! device fleet (campaign engine), reporting resolved relations and
//! query cost, plus the deterministic assist-selection leakage (§IV-D).
//!
//! ```text
//! attack_coop_sweep [--devices N] [--seed S] [--threads K]
//!                   [--json PATH] [--csv PATH]
//! ```

use rand::SeedableRng;
use ropuf_bench::{parse_flags, write_artifact};
use ropuf_campaign::{AttackKind, Campaign, FleetSpec};
use ropuf_constructions::cooperative::{AssistSelection, CooperativeConfig, CooperativeScheme};
use ropuf_sim::{ArrayDims, RoArrayBuilder};

fn main() {
    let flags = parse_flags();
    flags.expect_known(&["devices", "seed", "threads", "json", "csv"]);
    let devices = flags.get_usize("devices").unwrap_or(6);
    let master_seed = flags.get_u64("seed").unwrap_or(9);
    let threads = flags.get_usize("threads").unwrap_or(0);
    let json_path = flags.get_required_value("json");
    let csv_path = flags.get_required_value("csv");

    ropuf_bench::header(
        "§VI-B — cooperative attack sweep + §IV-D deterministic-scan leakage",
        "response-bit relations of all cooperating pairs recoverable; deterministic assist selection leaks passively",
    );
    let config = CooperativeConfig::default();
    let campaign = Campaign {
        attack: AttackKind::Cooperative(config),
        fleet: FleetSpec {
            dims: ArrayDims::new(16, 8),
            devices,
            master_seed,
        },
        threads,
        early_exit: false,
        detector: None,
    };
    let report = campaign.run();

    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "device", "coop pairs", "resolved", "queries"
    );
    for run in &report.runs {
        match &run.error {
            Some(e) => println!("{:>8} attack not applicable: {e}", run.device_id),
            None => {
                let (resolved, total) = run.relations.unwrap_or((0, 0));
                println!(
                    "{:>8} {total:>12} {resolved:>12} {:>12}",
                    run.device_id, run.queries
                );
            }
        }
    }
    println!(
        "fleet: {}/{} devices fully resolved, {:.0} mean queries, {:.1} ms wall",
        report.succeeded(),
        report.runs.len(),
        report.mean_queries(),
        report.total_wall_ms
    );

    if let Some(path) = json_path {
        write_artifact(path, &report.to_json(false));
    }
    if let Some(path) = csv_path {
        write_artifact(path, &report.to_csv(false));
    }

    // Passive leakage of the deterministic scan (independent of the
    // campaign engine: observes enrollment transcripts directly).
    let det = CooperativeConfig {
        selection: AssistSelection::DeterministicScan,
        ..config
    };
    let scheme = CooperativeScheme::new(det);
    let mut skipped_total = 0usize;
    let mut scans = 0usize;
    for seed in 0..10u64 {
        let mut arng = rand::rngs::StdRng::seed_from_u64(5000 + seed);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut arng);
        let mut erng = rand::rngs::StdRng::seed_from_u64(6000 + seed);
        if let Ok((_, transcript)) = scheme.enroll_with_transcript(&array, &mut erng) {
            for (_, skipped, _) in &transcript.scans {
                scans += 1;
                skipped_total += skipped.len();
            }
        }
    }
    println!(
        "\n§IV-D leakage: deterministic scans over 10 devices: {scans} scans, {skipped_total} skipped candidates ⇒ {skipped_total} relation bits leaked passively"
    );
}
