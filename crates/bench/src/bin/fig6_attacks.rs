//! Regenerates the paper's **Fig. 6** (a, b, c): the three entropy
//! distiller attacks — group-based repartitioning, 1-out-of-k masking and
//! overlapping neighbor chain — each run end-to-end on the paper's 4×10
//! array, reporting recovered-vs-actual keys and query counts.

use rand::SeedableRng;
use ropuf_attacks::distiller_pairing::DistillerPairingAttack;
use ropuf_attacks::group_based::GroupBasedAttack;
use ropuf_attacks::Oracle;
use ropuf_constructions::group::{GroupBasedConfig, GroupBasedScheme};
use ropuf_constructions::pairing::distilled::{DistilledConfig, DistilledPairingScheme, PairSource};
use ropuf_constructions::Device;
use ropuf_sim::{ArrayDims, RoArrayBuilder};

fn main() {
    ropuf_bench::header(
        "FIG 6 — entropy-distiller attacks on a 4×10 array",
        "(a) group-based repartition, (b) 1-out-of-k masking (k=5), (c) overlapping neighbor chain (multi-bit hypotheses)",
    );
    let dims = ArrayDims::new(10, 4);
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);

    // (a) group-based
    {
        let mut arng = rand::rngs::StdRng::seed_from_u64(61);
        let array = RoArrayBuilder::new(dims).build(&mut arng);
        let config = GroupBasedConfig::default();
        let mut device =
            Device::provision(array, Box::new(GroupBasedScheme::new(config)), 62).unwrap();
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let report = GroupBasedAttack::new(config).run(&mut oracle, &mut rng).unwrap();
        println!(
            "(a) group-based    : {} / {} key bits recovered, {} queries, exact = {}",
            report
                .recovered_key
                .iter()
                .zip(truth.iter())
                .filter(|(a, b)| a == b)
                .count(),
            truth.len(),
            report.queries,
            report.recovered_key == truth
        );
    }
    // (b) 1-out-of-k masking
    {
        let mut arng = rand::rngs::StdRng::seed_from_u64(63);
        let array = RoArrayBuilder::new(dims).build(&mut arng);
        let config = DistilledConfig {
            source: PairSource::OneOutOfK { k: 5 },
            ..DistilledConfig::default()
        };
        let mut device =
            Device::provision(array, Box::new(DistilledPairingScheme::new(config)), 64).unwrap();
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let report = DistillerPairingAttack::new(config).run(&mut oracle, &mut rng).unwrap();
        println!(
            "(b) 1-out-of-5     : {} / {} key bits recovered, {} queries, exact = {}",
            report
                .recovered_key
                .iter()
                .zip(truth.iter())
                .filter(|(a, b)| a == b)
                .count(),
            truth.len(),
            report.queries,
            report.recovered_key == truth
        );
    }
    // (c) overlapping chain
    {
        let mut arng = rand::rngs::StdRng::seed_from_u64(65);
        let array = RoArrayBuilder::new(dims).build(&mut arng);
        let config = DistilledConfig {
            source: PairSource::OverlappingChain,
            ..DistilledConfig::default()
        };
        let mut device =
            Device::provision(array, Box::new(DistilledPairingScheme::new(config)), 66).unwrap();
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let report = DistillerPairingAttack::new(config).run(&mut oracle, &mut rng).unwrap();
        println!(
            "(c) overlap chain  : {} / {} key bits recovered, {} queries, max hypotheses {}, exact = {}",
            report
                .recovered_key
                .iter()
                .zip(truth.iter())
                .filter(|(a, b)| a == b)
                .count(),
            truth.len(),
            report.queries,
            report.max_hypotheses,
            report.recovered_key == truth
        );
    }
    println!("\nshape check: all three attacks achieve (near-)full key recovery, as claimed in §VI-C/D.");
}
