//! Regenerates the paper's **Fig. 6** (a, b, c): the three entropy
//! distiller attacks — group-based repartitioning, 1-out-of-k masking
//! and overlapping neighbor chain — each run as a device-fleet campaign
//! on the paper's 4×10 array, reporting recovered-vs-actual keys and
//! query counts.
//!
//! ```text
//! fig6_attacks [--devices N] [--seed S] [--threads K] [--json-dir DIR]
//! ```
//!
//! With `--json-dir`, one timing-stripped campaign report per variant is
//! written to `DIR/fig6-<variant>.json` (plus a `.csv` sibling).

use ropuf_bench::{parse_flags, write_artifact};
use ropuf_campaign::{AttackKind, Campaign, CampaignReport, FleetSpec};
use ropuf_constructions::group::GroupBasedConfig;
use ropuf_constructions::pairing::distilled::{DistilledConfig, PairSource};
use ropuf_sim::ArrayDims;

fn print_variant(tag: &str, label: &str, report: &CampaignReport) {
    let bits_total: usize = report.runs.iter().map(|r| r.key_bits).sum();
    let bits_recovered: usize = report
        .runs
        .iter()
        .map(|r| r.key_bits - r.hamming_distance.unwrap_or(r.key_bits))
        .sum();
    let max_hyp = report
        .runs
        .iter()
        .filter_map(|r| r.max_hypotheses)
        .max()
        .map_or(String::new(), |h| format!(", max hypotheses {h}"));
    println!(
        "({tag}) {label:<15}: {}/{} devices exact, {bits_recovered}/{bits_total} key bits recovered, {:.0} mean queries{max_hyp}, {:.1} ms",
        report.succeeded(),
        report.runs.len(),
        report.mean_queries(),
        report.total_wall_ms,
    );
}

fn main() {
    let flags = parse_flags();
    flags.expect_known(&["devices", "seed", "threads", "json-dir"]);
    let devices = flags.get_usize("devices").unwrap_or(5);
    let master_seed = flags.get_u64("seed").unwrap_or(6);
    let threads = flags.get_usize("threads").unwrap_or(0);
    // Resolve artifact flags up front so a value-less --json-dir fails
    // before any campaign work is spent.
    let json_dir = flags.get_required_value("json-dir");

    ropuf_bench::header(
        "FIG 6 — entropy-distiller attacks on a 4×10 array (campaign engine)",
        "(a) group-based repartition, (b) 1-out-of-k masking (k=5), (c) overlapping neighbor chain (multi-bit hypotheses)",
    );
    let dims = ArrayDims::new(10, 4);

    let variants: [(&str, &str, AttackKind); 3] = [
        (
            "a",
            "group-based",
            AttackKind::GroupBased(GroupBasedConfig::default()),
        ),
        (
            "b",
            "1-out-of-5",
            AttackKind::DistillerPairing(DistilledConfig {
                source: PairSource::OneOutOfK { k: 5 },
                ..DistilledConfig::default()
            }),
        ),
        (
            "c",
            "overlap chain",
            AttackKind::DistillerPairing(DistilledConfig {
                source: PairSource::OverlappingChain,
                ..DistilledConfig::default()
            }),
        ),
    ];

    for (tag, label, attack) in variants {
        let campaign = Campaign {
            attack,
            fleet: FleetSpec {
                dims,
                devices,
                master_seed,
            },
            threads,
            early_exit: false,
            detector: None,
        };
        let report = campaign.run();
        print_variant(tag, label, &report);
        if let Some(dir) = json_dir {
            let slug = label.replace(' ', "-");
            write_artifact(&format!("{dir}/fig6-{slug}.json"), &report.to_json(false));
            write_artifact(&format!("{dir}/fig6-{slug}.csv"), &report.to_csv(false));
        }
    }
    println!(
        "\nshape check: all three attacks achieve (near-)full key recovery, as claimed in §VI-C/D."
    );
}
