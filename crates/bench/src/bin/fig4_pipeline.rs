//! Regenerates the paper's **Fig. 4**: the group-based RO PUF pipeline,
//! with stage-by-stage bit accounting (grouping entropy, Kendall bits,
//! ECC redundancy, packed key).

use rand::SeedableRng;
use ropuf_constructions::group::{GroupBasedConfig, GroupBasedHelper, GroupBasedScheme};
use ropuf_constructions::HelperDataScheme;
use ropuf_sim::ArrayDims;

fn main() {
    ropuf_bench::header(
        "FIG 4 — group-based RO PUF pipeline accounting",
        "distiller → grouping (Alg. 2) → Kendall coding → ECC → entropy packing",
    );
    let dims = ArrayDims::new(32, 16); // the paper's 16×32 array
    let array = ropuf_bench::standard_array(4, dims);
    let config = GroupBasedConfig::default();
    let scheme = GroupBasedScheme::new(config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(44);
    let e = scheme.enroll(&array, &mut rng).expect("enroll");
    let helper = GroupBasedHelper::from_bytes(&e.helper).expect("parse");
    let grouping = helper.grouping();
    let sizes: Vec<usize> = grouping.groups.iter().map(|g| g.len()).collect();
    println!("array: {dims} ({} ROs)", dims.len());
    println!("distiller degree: {}", helper.degree);
    println!("groups: {} (sizes {:?})", grouping.groups.len(), sizes);
    println!(
        "available entropy Σ log2(|G|!): {:.1} bits",
        grouping.entropy_bits()
    );
    println!("Kendall bits Σ |G|(|G|−1)/2: {}", grouping.kendall_bits());
    println!("ECC redundancy: {} bits", helper.parity.len());
    println!("packed key: {} bits", e.key.len());
    println!("helper data total: {} bytes", e.helper.len());
    println!(
        "\nshape check: Kendall ≫ packed ≥ entropy ({} ≫ {} ≥ {:.1}) — the paper's V-C/V-E trade-off.",
        grouping.kendall_bits(),
        e.key.len(),
        grouping.entropy_bits()
    );
}
