//! Regenerates the paper's **Fig. 1 / Section II claim**: a pairwise
//! comparator offers N(N−1)/2 response bits, but the total PUF entropy is
//! only log₂(N!) — the bits are heavily interdependent.

use ropuf_attacks::analysis::{pairwise_comparisons, total_entropy_bits};

fn main() {
    ropuf_bench::header(
        "FIG 1 / §II — RO PUF entropy accounting",
        "N(N−1)/2 comparison bits vs log2(N!) true entropy",
    );
    println!(
        "{:>6} {:>14} {:>16} {:>8}",
        "N", "comparisons", "entropy [bits]", "ratio"
    );
    for n in [8usize, 16, 32, 64, 128, 256, 512, 1024] {
        let c = pairwise_comparisons(n);
        let h = total_entropy_bits(n);
        println!("{n:>6} {c:>14} {h:>16.1} {:>8.3}", h / c as f64);
    }
}
