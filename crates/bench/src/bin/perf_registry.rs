//! Durable million-device registry benchmark — capacity, durability
//! and recovery numbers for the slab registry + snapshot/WAL store.
//!
//! ```text
//! perf_registry [--smoke] [--seed S] [--devices D] [--shards M]
//!               [--batch B] [--json PATH] [--dir PATH]
//! ```
//!
//! One run measures, in order, against a single synthetic fleet:
//!
//! 1. **enroll** — batched durable enrollment (every record
//!    write-ahead logged) devices/s, then resident-set size and
//!    per-device memory of the fully loaded slab registry.
//! 2. **wal recovery** — the process "crashes" (store dropped without
//!    compaction) and cold-starts by replaying the whole WAL.
//! 3. **compaction** — time to fold the registry into a v2 snapshot
//!    and prune the log, plus the snapshot's size on disk.
//! 4. **snapshot recovery** — a second cold start, now from the
//!    compacted snapshot instead of the raw log.
//! 5. **auth** — steady-state batched authentication throughput over
//!    the recovered fleet (genuine tags, cached HMAC midstates).
//!
//! Correctness is asserted throughout (every recovery must reproduce
//! the full fleet, every benchmark auth must accept); the numbers are
//! written to `BENCH_registry.json` (schema `ropuf-bench-registry/v1`)
//! so later PRs can regress against them. The full run sizes the fleet
//! at one million devices; `--smoke` keeps CI to tens of thousands.

use std::path::PathBuf;
use std::time::Instant;

use ropuf_bench::{parse_flags, write_artifact};
use ropuf_constructions::pairing::lisa::LISA_TAG;
use ropuf_constructions::DeviceResponse;
use ropuf_verifier::{
    client_tag, AuthRequest, BatchEnrollment, BatchScratch, DetectorConfig, StoreOptions, Verifier,
};

/// Schema tag of the artifact this binary writes.
const SCHEMA: &str = "ropuf-bench-registry/v1";

/// Deterministic pseudo-random bytes (no RNG dependency needed here).
fn fill_bytes(seed: u64, out: &mut [u8]) {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in out {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = x as u8;
    }
}

/// Device `d`'s verification credential, shared by the enrollment and
/// the genuine-tag auth phases.
fn digest_of(seed: u64, d: u64) -> [u8; 32] {
    let mut digest = [0u8; 32];
    fill_bytes(seed ^ d, &mut digest);
    digest
}

/// Resident-set size in bytes from `/proc/self/status` (0 when
/// unavailable — non-Linux or restricted /proc).
fn rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Total bytes of store files under `dir` matching `prefix`.
fn disk_bytes(dir: &PathBuf, prefix: &str) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(Result::ok)
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(prefix))
        })
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

fn main() {
    let flags = parse_flags();
    flags.expect_known(&["smoke", "seed", "devices", "shards", "batch", "json", "dir"]);
    let smoke = flags.has("smoke");
    let seed = flags.get_u64("seed").unwrap_or(1);
    let devices = flags
        .get_usize("devices")
        .unwrap_or(if smoke { 20_000 } else { 1_000_000 });
    let shards = flags.get_usize("shards").unwrap_or(16);
    let batch = flags.get_usize("batch").unwrap_or(4096);
    let json_path = flags
        .get_required_value("json")
        .unwrap_or("BENCH_registry.json")
        .to_string();
    let dir = flags
        .get_required_value("dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("ropuf-perf-registry-{}", std::process::id()))
        });
    let auth_rounds = if smoke { 40 } else { 200 };
    let _ = std::fs::remove_dir_all(&dir);

    ropuf_bench::header(
        "PERF_REGISTRY — durable million-device registry benchmark",
        "slab registry + WAL sustains batched durable enrollment at scale; cold recovery replays the log (or the compacted v2 snapshot) back to the exact fleet; steady-state auth stays compute-bound",
    );
    println!("\nconfig: {devices} devices, {shards} shards, batch {batch}, store {dir:?}");

    // Detector budgets opened wide: the measured loops are registry
    // mechanics, not quarantine behavior.
    let wide_open = DetectorConfig {
        integrity_check: true,
        rate_window: 1,
        rate_budget: u32::MAX,
        failure_streak: u32::MAX,
    };

    // ── 1. durable batched enrollment ──────────────────────────────
    let rss_before = rss_bytes();
    let (verifier, report) =
        Verifier::open_durable(&dir, shards, wide_open, StoreOptions::default())
            .expect("open fresh store");
    assert!(report.snapshot_seq.is_none(), "fresh directory");
    let t0 = Instant::now();
    let mut enrolled = 0usize;
    while enrolled < devices {
        let n = batch.min(devices - enrolled);
        let entries: Vec<BatchEnrollment> = (enrolled..enrolled + n)
            .map(|d| {
                let d = d as u64;
                let mut helper = vec![0u8; 16];
                fill_bytes(seed ^ d ^ 0x48_45_4C_50, &mut helper);
                BatchEnrollment {
                    device_id: d,
                    scheme_tag: LISA_TAG,
                    helper,
                    key_digest: digest_of(seed, d),
                }
            })
            .collect();
        let results = verifier.enroll_batch(entries);
        assert!(results.iter().all(Result::is_ok), "fresh ids enroll");
        enrolled += n;
    }
    let enroll_secs = t0.elapsed().as_secs_f64().max(1e-12);
    let enroll_ops = devices as f64 / enroll_secs;
    let rss_loaded = rss_bytes();
    let rss_delta = rss_loaded.saturating_sub(rss_before);
    let bytes_per_device = rss_delta as f64 / devices.max(1) as f64;
    let wal_bytes = disk_bytes(&dir, "wal-");
    assert_eq!(verifier.registry().len(), devices);
    println!("\n[enroll] {devices} devices in {enroll_secs:.2}s (WAL-logged, batched)");
    println!("  throughput : {enroll_ops:>12.0} devices/s");
    println!(
        "  wal size   : {:>12.1} MiB",
        wal_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "  rss        : {:>12.1} MiB loaded ({bytes_per_device:.0} B/device)",
        rss_loaded as f64 / (1 << 20) as f64
    );
    drop(verifier); // crash: the WAL is the only durable copy

    // ── 2. cold recovery from the raw WAL ──────────────────────────
    let t0 = Instant::now();
    let (verifier, report) =
        Verifier::open_durable(&dir, shards, wide_open, StoreOptions::default())
            .expect("recover from WAL");
    let wal_recovery_secs = t0.elapsed().as_secs_f64().max(1e-12);
    let wal_recovery_ops = devices as f64 / wal_recovery_secs;
    assert_eq!(verifier.registry().len(), devices, "WAL recovery is exact");
    assert_eq!(report.enrolls_applied as usize, devices);
    assert!(report.torn_tail.is_none(), "clean shutdown, clean log");
    println!("\n[recovery/wal] cold start replaying the full log");
    println!("  time       : {wal_recovery_secs:>12.2} s  ({wal_recovery_ops:.0} devices/s)");

    // ── 3. compaction into a v2 snapshot ───────────────────────────
    let t0 = Instant::now();
    verifier.compact().expect("compaction");
    let compact_secs = t0.elapsed().as_secs_f64().max(1e-12);
    let snapshot_bytes = disk_bytes(&dir, "snapshot-");
    println!("\n[compact] registry -> v2 snapshot + log prune");
    println!("  time       : {compact_secs:>12.2} s");
    println!(
        "  snapshot   : {:>12.1} MiB ({:.0} B/device)",
        snapshot_bytes as f64 / (1 << 20) as f64,
        snapshot_bytes as f64 / devices.max(1) as f64
    );
    drop(verifier);

    // ── 4. cold recovery from the compacted snapshot ───────────────
    let t0 = Instant::now();
    let (verifier, report) =
        Verifier::open_durable(&dir, shards, wide_open, StoreOptions::default())
            .expect("recover from snapshot");
    let snap_recovery_secs = t0.elapsed().as_secs_f64().max(1e-12);
    let snap_recovery_ops = devices as f64 / snap_recovery_secs;
    assert_eq!(
        verifier.registry().len(),
        devices,
        "snapshot recovery is exact"
    );
    assert!(report.snapshot_seq.is_some(), "snapshot is the base");
    println!("\n[recovery/snapshot] cold start from the compacted snapshot");
    println!("  time       : {snap_recovery_secs:>12.2} s  ({snap_recovery_ops:.0} devices/s)");

    // ── 5. steady-state auth over the recovered fleet ──────────────
    let auth_batch = batch.min(devices);
    let requests: Vec<AuthRequest> = (0..auth_batch)
        .map(|i| {
            // Stride through the fleet so shard and slab locality match
            // scattered production traffic, not a warm linear scan.
            let d = (i as u64).wrapping_mul(2_654_435_761) % devices as u64;
            let mut nonce = vec![0u8; 32];
            fill_bytes(seed ^ ((i as u64) << 20), &mut nonce);
            let tag = client_tag(&digest_of(seed, d), &nonce);
            AuthRequest {
                device_id: d,
                now: i as u64,
                nonce,
                response: DeviceResponse::Tag(tag),
                presented_helper: None,
            }
        })
        .collect();
    let queries: Vec<_> = requests.iter().map(AuthRequest::as_query).collect();
    let mut scratch = BatchScratch::new();
    let mut verdicts = Vec::new();
    verifier.authenticate_batch_with(&queries, &mut scratch, &mut verdicts); // warm
    assert!(
        verdicts.iter().all(|v| v.is_accept()),
        "recovered fleet must authenticate its own credentials"
    );
    let t0 = Instant::now();
    for _ in 0..auth_rounds {
        verifier.authenticate_batch_with(&queries, &mut scratch, &mut verdicts);
    }
    let auth_secs = t0.elapsed().as_secs_f64().max(1e-12);
    let auth_ops = (auth_rounds * auth_batch) as f64 / auth_secs;
    println!("\n[auth] steady-state batched auth over the recovered fleet");
    println!("  throughput : {auth_ops:>12.0} ops/s (batch {auth_batch}, {auth_rounds} rounds)");

    // ── Artifact ───────────────────────────────────────────────────
    let json = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"config\": {{\"seed\": {seed}, \"devices\": {devices}, \"shards\": {shards}, \"batch\": {batch}, \"auth_rounds\": {auth_rounds}}},\n  \"enroll\": {{\"devices_per_s\": {enroll_ops:.0}, \"seconds\": {enroll_secs:.3}, \"wal_bytes\": {wal_bytes}}},\n  \"memory\": {{\"rss_loaded_bytes\": {rss_loaded}, \"rss_delta_bytes\": {rss_delta}, \"bytes_per_device\": {bytes_per_device:.0}}},\n  \"recovery\": {{\"wal_seconds\": {wal_recovery_secs:.3}, \"wal_devices_per_s\": {wal_recovery_ops:.0}, \"snapshot_seconds\": {snap_recovery_secs:.3}, \"snapshot_devices_per_s\": {snap_recovery_ops:.0}}},\n  \"compaction\": {{\"seconds\": {compact_secs:.3}, \"snapshot_bytes\": {snapshot_bytes}}},\n  \"auth\": {{\"ops_per_s\": {auth_ops:.0}, \"batch\": {auth_batch}}}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
    );
    write_artifact(&json_path, &json);

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\nverdict: {devices} devices durable at {enroll_ops:.0} enrolls/s, WAL recovery {wal_recovery_secs:.2}s, snapshot recovery {snap_recovery_secs:.2}s, steady-state auth {auth_ops:.0} ops/s — recoveries asserted exact, artifact written."
    );
}
