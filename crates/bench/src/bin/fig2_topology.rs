//! Regenerates the paper's **Fig. 2**: the frequency topology of an RO
//! array is a systematic trend plus random roughness; the entropy
//! distiller's polynomial regression removes the trend.

use rand::SeedableRng;
use ropuf_constructions::group::Distiller;
use ropuf_numeric::stats::std_dev;
use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder, VariationProfile};

fn main() {
    ropuf_bench::header(
        "FIG 2 — frequency topology f(x, y): trend + roughness",
        "distiller residuals isolate the random component (R² of fit high with trend, ~0 without)",
    );
    let dims = ArrayDims::new(32, 16); // the paper's 16×32 array
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    println!(
        "{:>22} {:>12} {:>12} {:>8} {:>8}",
        "profile", "raw σ [kHz]", "res σ [kHz]", "R²(p=2)", "R²(p=3)"
    );
    for (name, peak) in [
        ("strong trend", 6.0e6),
        ("default trend", 1.5e6),
        ("no trend", 0.0),
    ] {
        let profile = VariationProfile {
            systematic_peak_hz: peak,
            ..VariationProfile::default()
        };
        let array = RoArrayBuilder::new(dims).profile(profile).build(&mut rng);
        let freqs = array.measure_all_averaged(Environment::nominal(), 8, &mut rng);
        let mut r2 = [0.0f64; 2];
        let mut res_sd = 0.0;
        for (i, p) in [2usize, 3].into_iter().enumerate() {
            let d = Distiller::new(p);
            let poly = d.fit(dims, &freqs).expect("fit");
            r2[i] = Distiller::r_squared(dims, &freqs, &poly);
            if p == 2 {
                res_sd = std_dev(&Distiller::subtract(dims, &freqs, &poly));
            }
        }
        println!(
            "{name:>22} {:>12.1} {:>12.1} {:>8.3} {:>8.3}",
            std_dev(&freqs) / 1e3,
            res_sd / 1e3,
            r2[0],
            r2[1]
        );
    }
    println!("\nrow-averaged frequency profile (default trend), showing the spatial gradient:");
    let array = RoArrayBuilder::new(dims).build(&mut rng);
    let freqs = array.measure_all_averaged(Environment::nominal(), 8, &mut rng);
    for y in 0..dims.rows() {
        let row_mean: f64 = (0..dims.cols())
            .map(|x| freqs[dims.index(x, y)])
            .sum::<f64>()
            / dims.cols() as f64;
        println!(
            "  y = {y:>2}: {:>10.1} kHz above nominal",
            (row_mean - 200e6) / 1e3
        );
    }
}
