//! The campaign-engine demonstrator: a ≥32-device LISA fleet attacked in
//! parallel, with per-device results, bit-for-bit reproducibility
//! verification and a measured parallel-vs-serial speedup.
//!
//! ```text
//! campaign_lisa [--devices N] [--seed S] [--threads K] [--early-exit]
//!               [--json PATH] [--csv PATH] [--skip-speedup]
//! ```
//!
//! On a multicore host the speedup section is expected to exceed 2×;
//! on a single-core host it degenerates to ≈1× and says so.

use ropuf_bench::{parse_flags, write_artifact};
use ropuf_campaign::{AttackKind, Campaign, FleetSpec};
use ropuf_constructions::pairing::lisa::LisaConfig;
use ropuf_sim::ArrayDims;

fn main() {
    let flags = parse_flags();
    flags.expect_known(&[
        "devices",
        "seed",
        "threads",
        "early-exit",
        "json",
        "csv",
        "skip-speedup",
    ]);
    let devices = flags.get_usize("devices").unwrap_or(32);
    let master_seed = flags.get_u64("seed").unwrap_or(1);
    let threads = flags.get_usize("threads").unwrap_or(0);
    let early_exit = flags.has("early-exit");
    // Resolve artifact flags up front so a value-less --json/--csv fails
    // before the campaign has burned its wall time.
    let json_path = flags.get_required_value("json");
    let csv_path = flags.get_required_value("csv");

    ropuf_bench::header(
        "CAMPAIGN — parallel LISA key recovery across a device fleet",
        "statistical attacks scale linearly over independent devices; per-device seeds make campaigns replayable",
    );

    let campaign = Campaign {
        attack: AttackKind::Lisa(LisaConfig::default()),
        fleet: FleetSpec {
            dims: ArrayDims::new(16, 8),
            devices,
            master_seed,
        },
        threads,
        early_exit,
        detector: None,
    };

    let report = campaign.run();
    println!(
        "{:>8} {:>20} {:>8} {:>8} {:>9} {:>8} {:>9}",
        "device", "attack seed", "success", "queries", "key bits", "hd", "wall ms"
    );
    for run in &report.runs {
        println!(
            "{:>8} {:>20} {:>8} {:>8} {:>9} {:>8} {:>9.2}",
            run.device_id,
            run.attack_seed,
            run.success,
            run.queries,
            run.key_bits,
            run.hamming_distance
                .map_or("-".to_string(), |d| d.to_string()),
            run.wall_ms,
        );
    }
    println!(
        "\nsummary: {}/{} recovered, {:.0} mean queries, {} threads, {:.1} ms wall",
        report.succeeded(),
        report.runs.len(),
        report.mean_queries(),
        report.threads,
        report.total_wall_ms,
    );

    // Reproducibility: an identical campaign must serialize identically.
    let replay = campaign.run();
    let identical = report.to_json(false) == replay.to_json(false);
    println!("reproducibility: replayed campaign JSON identical bit-for-bit: {identical}");
    assert!(identical, "campaign determinism violated");

    // Parallel speedup against a forced single-thread run.
    if !flags.has("skip-speedup") {
        let serial = Campaign {
            threads: 1,
            ..campaign
        }
        .run();
        let speedup = serial.total_wall_ms / report.total_wall_ms;
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "speedup: serial {:.1} ms / parallel {:.1} ms = {speedup:.2}x on {cores} core(s)",
            serial.total_wall_ms, report.total_wall_ms,
        );
        if cores > 2 {
            println!("expectation on this multicore host: > 2x");
        } else {
            println!("single/dual-core host: speedup necessarily ≈ 1x here; re-run on a multicore machine");
        }
    }

    if let Some(path) = json_path {
        write_artifact(path, &report.to_json(false));
    }
    if let Some(path) = csv_path {
        write_artifact(path, &report.to_csv(false));
    }
}
