//! The closed-loop demonstrator: a mixed fleet of all four
//! constructions enrolled in a sharded verifier, benign authentication
//! traffic served (and never flagged), and the LISA devices attacked
//! with the defender-side detector watching — reporting
//! *time-to-detection* and *queries-before-flag* next to attack
//! success.
//!
//! ```text
//! campaign_verifier [--devices N] [--seed S] [--threads K] [--shards M]
//!                   [--rounds R] [--smoke] [--json PATH]
//! ```
//!
//! Acceptance shape: with the default thresholds the detector flags
//! every LISA-attacked device within a handful of queries — orders of
//! magnitude before key recovery — while a full benign serving epoch
//! across all four schemes produces zero flags.

use ropuf_bench::{parse_flags, write_artifact};
use ropuf_campaign::{AttackKind, Campaign, FleetSpec};
use ropuf_constructions::cooperative::{CooperativeConfig, CooperativeScheme, COOP_TAG};
use ropuf_constructions::group::{GroupBasedConfig, GroupBasedScheme, GROUP_TAG};
use ropuf_constructions::pairing::distilled::{
    DistilledConfig, DistilledPairingScheme, DISTILLED_TAG,
};
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
use ropuf_constructions::{Device, HelperDataScheme};
use ropuf_sim::{ArrayDims, Environment};
use ropuf_verifier::{device_auth_response, AuthRequest, DetectorConfig, Verifier};

/// One enrolled fleet member: the simulated device plus its identity.
struct FleetMember {
    device_id: u64,
    scheme_name: &'static str,
    device: Device,
}

/// Scheme template + geometry for one fleet slice.
fn scheme_for(slot: usize) -> (&'static str, u8, ArrayDims, Box<dyn HelperDataScheme>) {
    match slot {
        0 => (
            "lisa",
            LISA_TAG,
            ArrayDims::new(16, 8),
            Box::new(LisaScheme::new(LisaConfig::default())),
        ),
        1 => (
            "cooperative",
            COOP_TAG,
            ArrayDims::new(16, 8),
            Box::new(CooperativeScheme::new(CooperativeConfig::default())),
        ),
        2 => (
            "group-based",
            GROUP_TAG,
            ArrayDims::new(10, 4),
            Box::new(GroupBasedScheme::new(GroupBasedConfig::default())),
        ),
        _ => (
            "distiller-pairing",
            DISTILLED_TAG,
            ArrayDims::new(10, 4),
            Box::new(DistilledPairingScheme::new(DistilledConfig::default())),
        ),
    }
}

fn main() {
    let flags = parse_flags();
    flags.expect_known(&[
        "devices", "seed", "threads", "shards", "rounds", "smoke", "json",
    ]);
    let smoke = flags.has("smoke");
    let devices = flags.get_usize("devices").unwrap_or(32);
    let master_seed = flags.get_u64("seed").unwrap_or(1);
    let threads = flags.get_usize("threads").unwrap_or(0);
    let shards = flags.get_usize("shards").unwrap_or(8);
    let rounds = flags
        .get_usize("rounds")
        .unwrap_or(if smoke { 4 } else { 16 });
    let json_path = flags.get_required_value("json");

    ropuf_bench::header(
        "VERIFIER — defender closed loop over a mixed fleet",
        "§VII: helper-data integrity checks + query monitoring flag every attack long before key recovery, at zero benign false positives",
    );

    let config = DetectorConfig::default();
    let verifier = Verifier::new(shards, config);

    // The first quarter of the fleet runs LISA (those devices get
    // attacked); the rest round-robins the other three constructions
    // and only ever serves benign traffic.
    let attacked = (devices / 4).max(1).min(devices);
    let mut fleet: Vec<FleetMember> = Vec::new();
    for id in 0..devices {
        let slot = if id < attacked {
            0
        } else {
            1 + (id - attacked) % 3
        };
        let (scheme_name, tag, dims, scheme) = scheme_for(slot);
        let spec = FleetSpec {
            dims,
            devices,
            master_seed,
        };
        match spec.provision_device(id, scheme.as_ref()) {
            Ok(device) => {
                verifier
                    .enroll(id as u64, tag, device.helper(), device.enrolled_key())
                    .expect("fresh ids cannot collide");
                fleet.push(FleetMember {
                    device_id: id as u64,
                    scheme_name,
                    device,
                });
            }
            Err(e) => println!("device {id} ({scheme_name}): enrollment failed, skipped: {e}"),
        }
    }
    let by_scheme = |name: &str| fleet.iter().filter(|m| m.scheme_name == name).count();
    println!(
        "enrolled {} devices into {} shards: {} lisa (attack targets), {} cooperative, {} group-based, {} distiller-pairing",
        fleet.len(),
        verifier.registry().shard_count(),
        by_scheme("lisa"),
        by_scheme("cooperative"),
        by_scheme("group-based"),
        by_scheme("distiller-pairing"),
    );

    // ── Benign serving epoch ────────────────────────────────────────
    // Every device authenticates once per round, batched, across a
    // temperature sweep; devices are staggered inside the rate window.
    let temps: Vec<Environment> = Environment::sweep(18.0, 32.0, rounds).collect();
    let gap = 2 * config.rate_window / config.rate_budget as u64; // well under budget
    let fleet_len = fleet.len();
    let (mut accepted, mut rejected, mut benign_flagged) = (0usize, 0usize, 0usize);
    for (round, env) in temps.iter().enumerate() {
        let mut batch: Vec<AuthRequest> = Vec::with_capacity(fleet_len);
        for member in fleet.iter_mut() {
            let nonce = format!("auth-{}-{round}", member.device_id).into_bytes();
            let response = device_auth_response(&mut member.device, &nonce, *env);
            batch.push(AuthRequest {
                device_id: member.device_id,
                now: round as u64 * gap * fleet_len as u64 + member.device_id * gap,
                nonce,
                response,
                presented_helper: Some(member.device.helper().to_vec()),
            });
        }
        for verdict in verifier.authenticate_batch(&batch) {
            if verdict.is_flagged() {
                benign_flagged += 1;
            } else if verdict.is_accept() {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
    }
    println!(
        "\nbenign epoch: {} batched auths over {:.0}–{:.0} °C: {accepted} accepted, {rejected} rejected (noise), {benign_flagged} flagged",
        rounds * fleet.len(),
        temps.first().map_or(0.0, |e| e.temperature_c),
        temps.last().map_or(0.0, |e| e.temperature_c),
    );
    let registry_flags = verifier.registry().flagged_devices();
    println!("registry flag list after benign epoch: {registry_flags:?}");

    // ── Attack epoch: LISA devices under the engine's closed loop ──
    let campaign = Campaign {
        attack: AttackKind::Lisa(LisaConfig::default()),
        fleet: FleetSpec {
            dims: ArrayDims::new(16, 8),
            devices: attacked,
            master_seed,
        },
        threads,
        early_exit: false,
        detector: Some(config),
    };
    // The campaign feeds its fleet-level flag-latency histogram into
    // the verifier's own telemetry registry, so one scrape shows both
    // sides of the closed loop.
    let report = campaign.run_with_telemetry(verifier.telemetry());
    println!(
        "\n{:>8} {:>8} {:>8} {:>9} {:>12} {:>18}",
        "device", "success", "queries", "flagged@", "before key?", "reason"
    );
    for run in &report.runs {
        println!(
            "{:>8} {:>8} {:>8} {:>9} {:>12} {:>18}",
            run.device_id,
            run.success,
            run.queries,
            run.flagged_at_query
                .map_or("-".to_string(), |q| q.to_string()),
            run.flagged_at_query.is_some_and(|q| q < run.queries),
            run.flag_reason.as_deref().unwrap_or("-"),
        );
    }

    let caught = report.flagged_before_completion();
    let caught_pct = 100.0 * caught as f64 / report.runs.len().max(1) as f64;
    println!(
        "\nattacked: {}/{} keys recovered by the attacker; detector flagged {caught}/{} ({caught_pct:.1}%) BEFORE recovery completed",
        report.succeeded(),
        report.runs.len(),
        report.runs.len(),
    );
    if let Some(mean_flag) = report.mean_queries_to_flag() {
        println!(
            "time-to-detection: mean {mean_flag:.1} queries to flag vs mean {:.0} queries to key recovery ({:.0}x headroom)",
            report.mean_queries(),
            report.mean_queries() / mean_flag.max(1.0),
        );
    }
    println!(
        "benign false positives: {benign_flagged} of {} auths",
        rounds * fleet.len()
    );

    // ── Fleet telemetry ────────────────────────────────────────────
    // One registry carries the whole loop: per-shard entry gauges,
    // verdict counters from the benign epoch, and the campaign's
    // flag-latency distribution — rendered from the same snapshot the
    // wire would serve.
    let telemetry = verifier.telemetry_snapshot();
    println!(
        "\nfleet telemetry ({} bytes as ropuf-metrics/v1):",
        telemetry.encode().len()
    );
    print!("{}", telemetry.render_text());
    let flagged_devices = report
        .runs
        .iter()
        .filter(|r| r.flagged_at_query.is_some())
        .count() as u64;
    assert_eq!(
        telemetry.histogram_samples("campaign.flag_latency_queries"),
        flagged_devices,
        "one flag-latency sample per flagged device"
    );

    // ── Registry snapshot roundtrip ────────────────────────────────
    let snapshot = verifier.registry().snapshot_json();
    let restored = Verifier::from_snapshot(&snapshot, config).expect("own snapshot must load");
    let roundtrip_ok = restored.registry().snapshot_json() == snapshot
        && restored.registry().len() == verifier.registry().len();
    println!(
        "\nsnapshot: {} bytes (ropuf-verifier/v1), reload roundtrip byte-identical: {roundtrip_ok}",
        snapshot.len()
    );
    assert!(roundtrip_ok, "snapshot roundtrip violated");

    if let Some(path) = json_path {
        write_artifact(path, &report.to_json(false));
    }

    // The acceptance gate this demonstrator exists for.
    assert_eq!(benign_flagged, 0, "benign devices must never be flagged");
    assert!(
        registry_flags.is_empty(),
        "registry must hold no benign flags"
    );
    assert!(
        caught_pct >= 90.0,
        "detector must flag >= 90% of attacked devices before key recovery, got {caught_pct:.1}%"
    );
    println!("\nverdict: closed loop holds — every signal combination above is asserted, not just printed.");
}
