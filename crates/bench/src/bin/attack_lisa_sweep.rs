//! §VI-A end-to-end sweep: LISA key recovery success rate and query
//! complexity across array sizes and ECC strengths — each cell of the
//! sweep is a parallel device-fleet campaign.
//!
//! ```text
//! attack_lisa_sweep [--devices N] [--seed S] [--threads K]
//!                   [--early-exit] [--json PATH] [--csv PATH]
//! ```
//!
//! `--json` / `--csv` write the *last* sweep cell's full per-device
//! report (timing-stripped, so artifacts are reproducible bit-for-bit).

use ropuf_bench::{parse_flags, write_artifact};
use ropuf_campaign::{AttackKind, Campaign, FleetSpec};
use ropuf_constructions::pairing::lisa::LisaConfig;
use ropuf_sim::ArrayDims;

fn main() {
    let flags = parse_flags();
    flags.expect_known(&["devices", "seed", "threads", "early-exit", "json", "csv"]);
    let devices = flags.get_usize("devices").unwrap_or(5);
    let master_seed = flags.get_u64("seed").unwrap_or(8);
    let threads = flags.get_usize("threads").unwrap_or(0);
    let early_exit = flags.has("early-exit");
    let json_path = flags.get_required_value("json");
    let csv_path = flags.get_required_value("csv");

    ropuf_bench::header(
        "§VI-A — LISA attack sweep (campaign engine)",
        "full key recovery with ~3(P−1)+O(1) queries, independent of ECC strength t",
    );
    println!(
        "{:>10} {:>4} {:>8} {:>10} {:>12} {:>10} {:>10}",
        "array", "t", "devices", "recovered", "avg queries", "key bits", "wall ms"
    );

    let mut last = None;
    for (cols, rows) in [(8usize, 8usize), (16, 8), (16, 16)] {
        for t in [2usize, 3, 5] {
            let config = LisaConfig {
                ecc_t: t,
                ..LisaConfig::default()
            };
            let campaign = Campaign {
                attack: AttackKind::Lisa(config),
                fleet: FleetSpec {
                    dims: ArrayDims::new(cols, rows),
                    devices,
                    master_seed,
                },
                threads,
                early_exit,
                detector: None,
            };
            let report = campaign.run();
            let key_bits = report.runs.iter().map(|r| r.key_bits).max().unwrap_or(0);
            println!(
                "{:>10} {t:>4} {devices:>8} {:>10} {:>12.0} {key_bits:>10} {:>10.1}",
                format!("{rows}x{cols}"),
                report.succeeded(),
                report.mean_queries(),
                report.total_wall_ms,
            );
            last = Some(report);
        }
    }

    if let Some(report) = last {
        if let Some(path) = json_path {
            write_artifact(path, &report.to_json(false));
        }
        if let Some(path) = csv_path {
            write_artifact(path, &report.to_csv(false));
        }
    }
    println!("\nshape check: recovery succeeds across sizes and t; queries scale ≈ 3 × key bits.");
}
