//! §VI-A end-to-end sweep: LISA key recovery success rate and query
//! complexity across array sizes and ECC strengths.

use rand::SeedableRng;
use ropuf_attacks::lisa::LisaAttack;
use ropuf_attacks::Oracle;
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme};
use ropuf_constructions::Device;
use ropuf_sim::{ArrayDims, RoArrayBuilder};

fn main() {
    ropuf_bench::header(
        "§VI-A — LISA attack sweep",
        "full key recovery with ~3(P−1)+O(1) queries, independent of ECC strength t",
    );
    println!("{:>10} {:>4} {:>8} {:>10} {:>12} {:>10}", "array", "t", "devices", "recovered", "avg queries", "key bits");
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    for (cols, rows) in [(8usize, 8usize), (16, 8), (16, 16)] {
        for t in [2usize, 3, 5] {
            let config = LisaConfig {
                ecc_t: t,
                ..LisaConfig::default()
            };
            let devices = 5;
            let mut recovered = 0;
            let mut queries = 0u64;
            let mut key_bits = 0usize;
            for seed in 0..devices {
                let mut arng = rand::rngs::StdRng::seed_from_u64(1000 + seed);
                let array = RoArrayBuilder::new(ArrayDims::new(cols, rows)).build(&mut arng);
                let Ok(mut device) =
                    Device::provision(array, Box::new(LisaScheme::new(config)), 2000 + seed)
                else {
                    continue;
                };
                let truth = device.enrolled_key().clone();
                key_bits = truth.len();
                let mut oracle = Oracle::new(&mut device);
                if let Ok(report) = LisaAttack::new(config).run(&mut oracle, &mut rng) {
                    queries += report.queries;
                    if report.recovered_key == truth {
                        recovered += 1;
                    }
                }
            }
            println!(
                "{:>10} {t:>4} {devices:>8} {recovered:>10} {:>12.0} {key_bits:>10}",
                format!("{rows}x{cols}"),
                queries as f64 / devices as f64
            );
        }
    }
    println!("\nshape check: recovery succeeds across sizes and t; queries scale ≈ 3 × key bits.");
}
